"""Determinism and legacy parity of the seeded scenario generators."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.routing.failures import dual_link_failures
from repro.scenarios import (
    GaussianSurge,
    HotspotSurge,
    build_scenarios,
    gaussian_surges,
    k_link_failures,
    regional_failures,
    scenario_family,
    srlg_failures,
)
from repro.topology import isp_topology, rand_topology

#: Builds the reference topology and prints family fingerprints; run both
#: in-process and in a fresh subprocess to pin cross-process determinism.
_FINGERPRINT_SCRIPT = """
import numpy as np
from repro.scenarios import (
    build_scenarios, gaussian_surges, k_link_failures, regional_failures,
    srlg_failures,
)
from repro.topology import rand_topology

network = rand_topology(14, 4.0, np.random.default_rng(21))
sets = {
    "srlg": srlg_failures(network, num_groups=5, group_size=3, seed=9),
    "multi2": k_link_failures(network, k=2, max_scenarios=12, seed=9),
    "regional": regional_failures(network, num_regions=3, seed=9),
    "surge": gaussian_surges(count=4, seed=9),
    "spec": build_scenarios("srlg,multi2,srlgxsurge", network, seed=9),
}
for name, built in sorted(sets.items()):
    print(name, built.digest, "|".join(built.labels))
"""


def _fingerprints(output: str) -> dict[str, tuple[str, str]]:
    result = {}
    for line in output.strip().splitlines():
        name, digest, labels = line.split(" ", 2)
        result[name] = (digest, labels)
    return result


@pytest.fixture(scope="module")
def network():
    return rand_topology(14, 4.0, np.random.default_rng(21))


class TestSeededDeterminism:
    def test_same_seed_same_set(self, network):
        a = srlg_failures(network, num_groups=5, seed=9)
        b = srlg_failures(network, num_groups=5, seed=9)
        assert a.labels == b.labels
        assert a.digest == b.digest
        assert [s.failed_arcs for s in a] == [s.failed_arcs for s in b]

    def test_different_seed_differs(self, network):
        a = srlg_failures(network, num_groups=5, seed=9)
        b = srlg_failures(network, num_groups=5, seed=10)
        assert a.digest != b.digest

    def test_regional_deterministic(self, network):
        a = regional_failures(network, num_regions=3, seed=9)
        b = regional_failures(network, num_regions=3, seed=9)
        assert a.digest == b.digest
        assert 0 < len(a) <= 3

    def test_identical_across_processes(self):
        """Seeded generators reproduce labels, digests and order in a
        fresh interpreter — nothing depends on per-process hashing."""
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            exec(
                compile(_FINGERPRINT_SCRIPT, "<fingerprint>", "exec"), {}
            )
        local = _fingerprints(buffer.getvalue())

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        remote = _fingerprints(proc.stdout)
        assert remote == local
        assert set(local) == {"srlg", "multi2", "regional", "surge", "spec"}


class TestLegacyParity:
    def test_k2_reproduces_dual_link_failures(self, network):
        """k_link_failures(k=2) == the old dual_link_failures generator:
        same combination order, same sampling draws, same labels."""
        legacy = dual_link_failures(
            network, max_scenarios=10, rng=np.random.default_rng(5)
        )
        new = k_link_failures(
            network, k=2, max_scenarios=10, rng=np.random.default_rng(5)
        )
        assert [s.label for s in new] == [s.label for s in legacy]
        assert [s.failed_arcs for s in new] == [
            s.failed_arcs for s in legacy
        ]

    def test_k2_unsampled_matches_too(self, network):
        legacy = dual_link_failures(network)
        new = k_link_failures(network, k=2)
        assert [s.failed_arcs for s in new] == [
            s.failed_arcs for s in legacy
        ]


class TestGeneratorShapes:
    def test_srlg_groups_fail_whole_links(self, network):
        for scenario in srlg_failures(network, num_groups=4, seed=1):
            # Both directions of every member link die together.
            arcs = set(scenario.failed_arcs)
            for group in network.link_groups:
                overlap = arcs.intersection(group)
                assert not overlap or overlap == set(group)

    def test_srlg_geographic_when_positions_exist(self):
        isp = isp_topology()
        built = srlg_failures(isp, num_groups=4, group_size=3, seed=2)
        assert len(built) >= 1
        assert all(s.kind == "srlg" for s in built)

    def test_srlg_uniform_sampling_keeps_group_size(self, network):
        """Without positions the uniform draw must never re-pick the
        seed link — every group keeps exactly ``group_size`` links."""
        from repro.routing.network import Network

        bare = Network(
            network.num_nodes, list(network.arcs), name="bare"
        )
        num_links = len(bare.link_groups)
        for seed in range(5):
            built = srlg_failures(
                bare, num_groups=num_links, group_size=2, seed=seed
            )
            for scenario in built:
                member_links = {
                    g
                    for g, group in enumerate(bare.link_groups)
                    if set(group) <= set(scenario.failed_arcs)
                }
                assert len(member_links) == 2, scenario.label

    def test_regional_requires_positions(self, network):
        from repro.routing.network import Network

        bare = Network(
            network.num_nodes, list(network.arcs), name="bare"
        )
        with pytest.raises(ValueError, match="positions"):
            regional_failures(bare)

    def test_k_requires_at_least_two(self, network):
        with pytest.raises(ValueError, match="k must be >= 2"):
            k_link_failures(network, k=1)

    def test_sampling_requires_seed_or_rng(self, network):
        with pytest.raises(ValueError, match="seed or rng"):
            k_link_failures(network, k=2, max_scenarios=1)

    def test_variants_apply_deterministically(self, network):
        from repro.traffic import dtr_traffic

        traffic = dtr_traffic(
            network.num_nodes, np.random.default_rng(4), 1.0
        )
        for variant in (GaussianSurge(seed=3), HotspotSurge(seed=3)):
            once = variant.apply(traffic)
            twice = variant.apply(traffic)
            assert np.array_equal(once.delay.values, twice.delay.values)
            assert np.array_equal(
                once.throughput.values, twice.throughput.values
            )
            assert not np.array_equal(
                once.delay.values, traffic.delay.values
            )


class TestFamilyRegistry:
    def test_known_families_build(self, network):
        for name in ("link", "node", "srlg", "multi2", "surge", "rescale"):
            built = scenario_family(name, network, seed=0)
            assert len(built) >= 1

    def test_unknown_family_raises(self, network):
        with pytest.raises(ValueError, match="unknown scenario family"):
            scenario_family("volcano", network)
        with pytest.raises(ValueError, match="unknown scenario family"):
            scenario_family("multiX", network)

    def test_spec_concatenates_in_order(self, network):
        built = build_scenarios("srlg,surge", network, seed=0)
        assert built.kinds() == ("srlg", "surge")
        assert built.name == "srlg,surge"

    def test_spec_cross_product(self, network):
        built = build_scenarios("srlgxsurge", network, seed=0)
        assert all(s.kind == "srlgxsurge" for s in built)
        assert all(
            s.variant is not None and s.failed_arcs for s in built
        )

    def test_empty_spec_rejected(self, network):
        with pytest.raises(ValueError, match="empty"):
            build_scenarios(" , ", network)
