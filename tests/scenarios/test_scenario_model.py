"""Semantics of the Scenario / ScenarioSet model and the legacy bridge."""

import numpy as np
import pytest

from repro.routing.failures import (
    NORMAL,
    FailureModel,
    FailureScenario,
    single_link_failures,
    single_node_failures,
)
from repro.scenarios import (
    GaussianSurge,
    GravityRescale,
    HotspotSurge,
    Scenario,
    ScenarioSet,
    as_scenario,
    as_scenario_set,
    cross,
    gaussian_surges,
    legacy_failures,
)
from repro.topology import rand_topology


@pytest.fixture
def network():
    return rand_topology(12, 4.0, np.random.default_rng(3))


class TestScenario:
    def test_delegates_failure_surface(self):
        failure = FailureScenario(failed_arcs=(3, 1), label="link:1")
        scenario = Scenario(failure=failure, kind="link")
        assert scenario.failed_arcs == (1, 3)
        assert scenario.removed_nodes == ()
        assert scenario.label == "link:1"
        assert not scenario.is_normal

    def test_normal_only_without_failure_and_variant(self):
        assert Scenario().is_normal
        assert not Scenario(variant=GravityRescale(1.5)).is_normal
        assert not Scenario(
            failure=FailureScenario(failed_arcs=(0,), label="arc:0")
        ).is_normal

    def test_variant_label_composes(self):
        scenario = Scenario(
            failure=FailureScenario(failed_arcs=(2,), label="link:2"),
            variant=GaussianSurge(eps=0.2, seed=4),
            kind="linkxsurge",
        )
        assert scenario.label == "link:2|gauss0.2#4"

    def test_digest_depends_on_every_part(self):
        base = Scenario(
            failure=FailureScenario(failed_arcs=(2,), label="link:2")
        )
        other_kind = Scenario(failure=base.failure, kind="srlg")
        with_variant = Scenario(
            failure=base.failure, variant=GravityRescale(1.5)
        )
        digests = {base.digest, other_kind.digest, with_variant.digest}
        assert len(digests) == 3

    def test_hashable_and_value_equal(self):
        a = Scenario(variant=HotspotSurge(seed=1))
        b = Scenario(variant=HotspotSurge(seed=1))
        assert a == b and hash(a) == hash(b)


class TestScenarioSet:
    def test_wraps_legacy_preserving_order_and_labels(self, network):
        legacy = single_link_failures(network)
        wrapped = ScenarioSet.from_failures(legacy)
        assert len(wrapped) == len(legacy)
        assert wrapped.model is FailureModel.LINK
        for old, new in zip(legacy, wrapped):
            assert new.failure is old
            assert new.label == old.label
            assert new.kind == "link"

    def test_round_trips_to_failure_set(self, network):
        legacy = single_link_failures(network)
        wrapped = ScenarioSet.from_failures(legacy)
        back = wrapped.to_failure_set()
        assert back.scenarios == legacy.scenarios
        assert back.model is legacy.model

    def test_to_failure_set_rejects_variants(self):
        surge = gaussian_surges(count=1)
        with pytest.raises(ValueError, match="traffic variants"):
            surge.to_failure_set()

    def test_restriction_matches_legacy(self, network):
        legacy = single_link_failures(network)
        wrapped = ScenarioSet.from_failures(legacy)
        arcs = [0, 5, 9]
        old = legacy.restricted_to_arcs(arcs)
        new = wrapped.restricted_to_arcs(arcs)
        assert [s.failure for s in new] == list(old.scenarios)

    def test_restriction_keeps_traffic_only_scenarios(self, network):
        combined = legacy_failures(network) + gaussian_surges(count=2)
        restricted = combined.restricted_to_arcs([0])
        kinds = [s.kind for s in restricted]
        assert kinds.count("surge") == 2

    def test_node_failures_wrap(self, network):
        wrapped = ScenarioSet.from_failures(
            single_node_failures(network), kind="node"
        )
        assert all(s.removed_nodes for s in wrapped)

    def test_concatenation_preserves_order(self, network):
        a = legacy_failures(network)
        b = gaussian_surges(count=2)
        combined = a + b
        assert combined.labels == a.labels + b.labels
        assert combined.kinds() == ("link", "surge")

    def test_by_kind_partitions(self, network):
        combined = legacy_failures(network) + gaussian_surges(count=3)
        parts = combined.by_kind()
        assert set(parts) == {"link", "surge"}
        assert sum(len(p) for p in parts.values()) == len(combined)

    def test_digest_tracks_order(self):
        a = Scenario(failure=FailureScenario(failed_arcs=(0,), label="a"))
        b = Scenario(failure=FailureScenario(failed_arcs=(1,), label="b"))
        assert (
            ScenarioSet((a, b)).digest != ScenarioSet((b, a)).digest
        )

    def test_with_variant_recomposes(self, network):
        surged = legacy_failures(network).with_variant(
            GaussianSurge(seed=2), kind="linkxsurge"
        )
        assert all(s.variant == GaussianSurge(seed=2) for s in surged)
        assert all(s.kind == "linkxsurge" for s in surged)


class TestCoercions:
    def test_as_scenario(self):
        assert as_scenario(NORMAL).failure is NORMAL
        composed = Scenario(variant=GravityRescale(2.0))
        assert as_scenario(composed) is composed

    def test_as_scenario_set(self, network):
        legacy = single_link_failures(network)
        assert as_scenario_set(legacy).labels == tuple(
            s.label for s in legacy
        )
        existing = legacy_failures(network)
        assert as_scenario_set(existing) is existing
        mixed = as_scenario_set([NORMAL, Scenario(kind="surge")])
        assert len(mixed) == 2


class TestCross:
    def test_cross_is_failures_major(self, network):
        failures = legacy_failures(network)
        variants = gaussian_surges(count=2)
        product = cross(failures, variants)
        assert len(product) == len(failures) * 2
        first_blocks = product.scenarios[:2]
        assert {s.failure for s in first_blocks} == {failures[0].failure}
        assert all(s.kind == "linkxsurge" for s in product)

    def test_cross_tags_variant_family(self, network):
        failures = legacy_failures(network)
        product = cross(failures, [GravityRescale(1.5)])
        assert all(s.kind == "linkxrescale" for s in product)
        assert product.name == "linkxrescale"

    def test_cross_rejects_bad_sides(self, network):
        failures = legacy_failures(network)
        with pytest.raises(ValueError, match="traffic-only"):
            cross(failures, failures)
        product = cross(failures, gaussian_surges(count=1))
        with pytest.raises(ValueError, match="already carries"):
            cross(product, gaussian_surges(count=1))
