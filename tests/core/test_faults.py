"""Tests for the deterministic fault-injection registry.

These are pure unit tests: nothing here builds a pool or kills a
process.  The chaos integration tests that drive the whole supervised
sweep under injected faults live in ``tests/core/test_resilience.py``.
"""

import pytest

from repro.config import ExecutionParams
from repro.core.faults import (
    KNOWN_STAGES,
    FaultInjected,
    FaultPlan,
    StageFault,
    TaskDelay,
    WorkerKill,
    enter_task,
    exit_task,
    fault_point,
    install_fault_plan,
    installed_fault_plan,
)


class TestFaultSpecs:
    def test_kill_matches_task_and_attempt(self):
        fault = WorkerKill(task=3, attempts=(1, 3))
        assert fault.matches(3, 1)
        assert fault.matches(3, 3)
        assert not fault.matches(3, 2)
        assert not fault.matches(4, 1)

    def test_attempts_none_fires_every_attempt(self):
        fault = StageFault(stage="task", task=0, attempts=None)
        assert all(fault.matches("task", 0, k) for k in (1, 2, 7))

    def test_attempts_must_be_one_based(self):
        with pytest.raises(ValueError):
            WorkerKill(task=0, attempts=(0,))
        with pytest.raises(ValueError):
            TaskDelay(task=0, seconds=0.1, attempts=())

    def test_delay_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            TaskDelay(task=0, seconds=-1.0)

    def test_stage_must_be_known(self):
        with pytest.raises(ValueError):
            StageFault(stage="warp_core", task=0)
        for stage in KNOWN_STAGES:
            StageFault(stage=stage, task=0)

    def test_stage_fault_keys_on_stage_too(self):
        fault = StageFault(stage="route_batch", task=1)
        assert fault.matches("route_batch", 1, 1)
        assert not fault.matches("delay_flush", 1, 1)


class TestFaultPlan:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(ValueError):
            FaultPlan(faults=("kill task 0",))

    def test_json_roundtrip_all_kinds(self):
        plan = FaultPlan(
            faults=(
                WorkerKill(task=0),
                TaskDelay(task=2, seconds=0.5, attempts=(1, 2)),
                StageFault(stage="delay_flush", task=1, attempts=None),
            ),
            seed=17,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sample_is_deterministic(self):
        a = FaultPlan.sample(42, num_tasks=8, kills=2, delays=1,
                             stage_faults=2)
        b = FaultPlan.sample(42, num_tasks=8, kills=2, delays=1,
                             stage_faults=2)
        assert a == b
        assert a.seed == 42
        assert len(a) == 5
        # a different seed draws a different schedule
        assert a != FaultPlan.sample(43, num_tasks=8, kills=2, delays=1,
                                     stage_faults=2)

    def test_sample_rejects_empty_task_space(self):
        with pytest.raises(ValueError):
            FaultPlan.sample(0, num_tasks=0)

    def test_rides_in_execution_params(self):
        plan = FaultPlan(faults=(StageFault(stage="task", task=0),))
        execution = ExecutionParams(fault_plan=plan)
        assert execution.fault_plan is plan
        with pytest.raises(ValueError):
            ExecutionParams(fault_plan="not a plan")


class TestInjectionPoints:
    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        """Never leak an installed plan into other tests."""
        yield
        install_fault_plan(None)
        exit_task()

    def test_fault_point_is_noop_without_plan(self):
        assert installed_fault_plan() is None
        fault_point("task")  # nothing installed: must not raise

    def test_fault_point_is_noop_outside_task_context(self):
        install_fault_plan(
            FaultPlan(faults=(StageFault(stage="route_batch", task=0),))
        )
        # parent-side evaluations run with no task context: clean
        fault_point("route_batch")

    def test_stage_fault_fires_in_matching_context(self):
        install_fault_plan(
            FaultPlan(
                faults=(StageFault(stage="route_batch", task=1),)
            )
        )
        enter_task(0, 1)  # wrong task: clean
        fault_point("route_batch")
        exit_task()
        enter_task(1, 1)
        with pytest.raises(FaultInjected):
            fault_point("route_batch")
        exit_task()

    def test_enter_task_fires_task_stage(self):
        install_fault_plan(
            FaultPlan(faults=(StageFault(stage="task", task=2),))
        )
        enter_task(0, 1)  # other tasks are untouched
        exit_task()
        with pytest.raises(FaultInjected):
            enter_task(2, 1)

    def test_attempt_filter_lets_retries_succeed(self):
        install_fault_plan(
            FaultPlan(faults=(StageFault(stage="task", task=0,
                                         attempts=(1,)),))
        )
        with pytest.raises(FaultInjected):
            enter_task(0, 1)
        exit_task()
        enter_task(0, 2)  # the retry runs clean
        exit_task()

    def test_sweep_hook_wired_and_cleared(self):
        import repro.routing.sweep as sweep

        install_fault_plan(
            FaultPlan(faults=(StageFault(stage="route_batch", task=0),))
        )
        assert sweep._FAULT_HOOK is not None
        install_fault_plan(None)
        assert sweep._FAULT_HOOK is None


class TestResilienceKnobValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            ExecutionParams(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionParams(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            ExecutionParams(task_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionParams(sweep_deadline=-5.0)

    def test_task_timeout_within_sweep_deadline(self):
        with pytest.raises(ValueError):
            ExecutionParams(task_timeout=10.0, sweep_deadline=5.0)
        ExecutionParams(task_timeout=5.0, sweep_deadline=10.0)
