"""Checkpoint/resume: roundtrip, bit-parity, and compatibility gates.

The headline invariant under test: interrupt an optimization anywhere,
resume from the checkpoint, and the final weights and costs are
bit-identical to a run that was never interrupted.
"""

from __future__ import annotations

import dataclasses
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointManager,
    CheckpointMismatchError,
    OptimizerCheckpoint,
    OptimizerInterrupted,
    config_fingerprint,
    load_checkpoint,
    resolve_resume,
    save_checkpoint,
)
from repro.core.optimizer import RobustDtrOptimizer
from repro.scenarios.generators import legacy_failures, srlg_failures


def make_optimizer(small_instance, tiny_config, seed=42, scenarios=None):
    network, traffic = small_instance
    return RobustDtrOptimizer(
        network,
        traffic,
        tiny_config,
        rng=np.random.default_rng(seed),
        scenarios=scenarios,
    )


def meta_for(optimizer, **kwargs):
    failures = legacy_failures(
        optimizer.evaluator.network, optimizer._failure_model
    )
    return optimizer._checkpoint_meta(
        failures,
        kwargs.get("critical_fraction"),
        kwargs.get("full_search", False),
    )


# ----------------------------------------------------------------------
# roundtrip
# ----------------------------------------------------------------------
def test_checkpoint_roundtrip(tmp_path, small_instance, tiny_config):
    optimizer = make_optimizer(small_instance, tiny_config)
    meta = meta_for(optimizer)
    path = tmp_path / "ck.pkl"
    rng = np.random.default_rng(7)
    payload = {
        "stage": "phase2",
        "rng_state": rng.bit_generator.state,
        "marker": 123,
    }
    manager = CheckpointManager(path, meta, every=1)
    manager.write("phase2", payload)
    loaded = load_checkpoint(path)
    assert loaded.meta.stage == "phase2"
    assert loaded.payload["marker"] == 123
    restored = np.random.default_rng(0)
    restored.bit_generator.state = loaded.payload["rng_state"]
    assert restored.random() == np.random.default_rng(7).random()


def test_checkpoint_readable_in_fresh_subprocess(
    tmp_path, small_instance, tiny_config
):
    """Checkpoints must not depend on in-process state: a brand-new
    interpreter must load them and see identical digests + RNG state."""
    optimizer = make_optimizer(small_instance, tiny_config)
    meta = meta_for(optimizer)
    path = tmp_path / "ck.pkl"
    rng = np.random.default_rng(99)
    expected_draw = np.random.default_rng(99).random()
    CheckpointManager(path, meta, every=1).write(
        "phase1a", {"stage": "phase1a", "rng_state": rng.bit_generator.state}
    )
    code = (
        "import sys, numpy as np\n"
        "from repro.core.checkpoint import load_checkpoint\n"
        f"ck = load_checkpoint({str(path)!r})\n"
        f"assert ck.meta.scenario_digest == {meta.scenario_digest!r}\n"
        f"assert ck.meta.config_fingerprint == {meta.config_fingerprint!r}\n"
        "rng = np.random.default_rng(0)\n"
        "rng.bit_generator.state = ck.payload['rng_state']\n"
        f"assert rng.random() == {expected_draw!r}\n"
        "print('subprocess ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        cwd=str(Path(__file__).resolve().parents[2]),
        env={
            "PYTHONPATH": str(
                Path(__file__).resolve().parents[2] / "src"
            ),
            "PATH": "/usr/bin:/bin",
        },
    )
    assert proc.returncode == 0, proc.stderr
    assert "subprocess ok" in proc.stdout


def test_atomic_write_leaves_no_temp_files(
    tmp_path, small_instance, tiny_config
):
    optimizer = make_optimizer(small_instance, tiny_config)
    meta = meta_for(optimizer)
    path = tmp_path / "ck.pkl"
    manager = CheckpointManager(path, meta, every=1)
    for tick in range(3):
        manager.write("phase1a", {"stage": "phase1a", "tick": tick})
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []
    assert load_checkpoint(path).payload["tick"] == 2


# ----------------------------------------------------------------------
# resume == uninterrupted, bitwise
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("interrupt_after", [3, 12, 25])
def test_resume_matches_uninterrupted_bitwise(
    tmp_path, small_instance, tiny_config, interrupt_after
):
    """Interrupt at several depths (Phase 1a, Phase 1b/2 boundary, deep
    Phase 2); every resume must reproduce the uninterrupted result
    exactly — same weight bits, same costs, same evaluation counts."""
    reference = make_optimizer(small_instance, tiny_config).run()

    path = tmp_path / f"ck{interrupt_after}.pkl"
    optimizer = make_optimizer(small_instance, tiny_config)
    with pytest.raises(OptimizerInterrupted):
        optimizer.run(
            checkpoint=path,
            checkpoint_every=2,
            interrupt_after=interrupt_after,
        )
    assert path.exists()

    resumed = make_optimizer(small_instance, tiny_config, seed=0).run(
        checkpoint=path, resume_from=path, checkpoint_every=2
    )
    assert np.array_equal(
        resumed.robust_setting.delay, reference.robust_setting.delay
    )
    assert np.array_equal(
        resumed.robust_setting.tput, reference.robust_setting.tput
    )
    assert np.array_equal(
        resumed.regular_setting.delay, reference.regular_setting.delay
    )
    assert resumed.phase2.best_kfail == reference.phase2.best_kfail
    assert resumed.phase1.best_cost == reference.phase1.best_cost
    assert (
        resumed.phase2.stats.evaluations
        == reference.phase2.stats.evaluations
    )


@pytest.mark.slow
def test_double_interrupt_then_resume(tmp_path, small_instance, tiny_config):
    """Two successive interrupts (the second resuming the first) still
    land on the uninterrupted result."""
    reference = make_optimizer(small_instance, tiny_config).run()
    path = tmp_path / "ck.pkl"

    optimizer = make_optimizer(small_instance, tiny_config)
    with pytest.raises(OptimizerInterrupted):
        optimizer.run(checkpoint=path, checkpoint_every=2, interrupt_after=5)

    optimizer = make_optimizer(small_instance, tiny_config, seed=0)
    with pytest.raises(OptimizerInterrupted):
        optimizer.run(
            checkpoint=path,
            resume_from=path,
            checkpoint_every=2,
            interrupt_after=8,
        )

    resumed = make_optimizer(small_instance, tiny_config, seed=0).run(
        checkpoint=path, resume_from=path, checkpoint_every=2
    )
    assert np.array_equal(
        resumed.robust_setting.delay, reference.robust_setting.delay
    )
    assert np.array_equal(
        resumed.robust_setting.tput, reference.robust_setting.tput
    )
    assert resumed.phase2.best_kfail == reference.phase2.best_kfail


@pytest.mark.slow
def test_done_checkpoint_short_circuits(
    tmp_path, small_instance, tiny_config
):
    """A completed run's checkpoint stores the result; resuming returns
    it without recomputation (the RNG is untouched as witness)."""
    path = tmp_path / "ck.pkl"
    first = make_optimizer(small_instance, tiny_config).run(checkpoint=path)
    optimizer = make_optimizer(small_instance, tiny_config, seed=0)
    untouched = optimizer._rng.bit_generator.state
    again = optimizer.run(checkpoint=path, resume_from=path)
    assert again.phase2.best_kfail == first.phase2.best_kfail
    assert optimizer._rng.bit_generator.state == untouched


def test_missing_resume_file_starts_fresh(
    tmp_path, small_instance, tiny_config
):
    optimizer = make_optimizer(small_instance, tiny_config)
    meta = meta_for(optimizer)
    assert resolve_resume(tmp_path / "absent.pkl", meta) is None


# ----------------------------------------------------------------------
# compatibility gates
# ----------------------------------------------------------------------
def _write_checkpoint(path, optimizer):
    meta = meta_for(optimizer)
    CheckpointManager(path, meta, every=1).write(
        "phase1a", {"stage": "phase1a"}
    )
    return meta


def test_resume_refuses_different_scenarios(
    tmp_path, small_instance, tiny_config
):
    path = tmp_path / "ck.pkl"
    _write_checkpoint(path, make_optimizer(small_instance, tiny_config))
    network = small_instance[0]
    other = make_optimizer(
        small_instance,
        tiny_config,
        scenarios=srlg_failures(network, num_groups=3, seed=3),
    )
    meta = other._checkpoint_meta(other._scenarios, None, False)
    with pytest.raises(CheckpointMismatchError, match="scenario_digest"):
        resolve_resume(path, meta)


def test_resume_refuses_different_config(
    tmp_path, small_instance, tiny_config
):
    path = tmp_path / "ck.pkl"
    _write_checkpoint(path, make_optimizer(small_instance, tiny_config))
    changed = tiny_config.replace(
        search=dataclasses.replace(tiny_config.search, max_iterations=99)
    )
    other = make_optimizer(small_instance, changed)
    with pytest.raises(CheckpointMismatchError, match="config_fingerprint"):
        resolve_resume(path, meta_for(other))


def test_resume_refuses_different_execution(
    tmp_path, small_instance, tiny_config
):
    """Execution knobs are fingerprinted separately: results are
    bit-identical across engines, but counters and pool state are not,
    so resuming across an execution change is refused loudly."""
    path = tmp_path / "ck.pkl"
    _write_checkpoint(path, make_optimizer(small_instance, tiny_config))
    changed = tiny_config.replace(
        execution=dataclasses.replace(tiny_config.execution, n_jobs=2)
    )
    other = make_optimizer(small_instance, changed)
    with pytest.raises(
        CheckpointMismatchError, match="execution_fingerprint"
    ):
        resolve_resume(path, meta_for(other))


def test_config_fingerprint_ignores_execution(tiny_config):
    """The search fingerprint must NOT change with execution knobs —
    arm artifacts from ``--jobs 2`` and serial runs are the same arm."""
    parallel = tiny_config.replace(
        execution=dataclasses.replace(tiny_config.execution, n_jobs=4)
    )
    assert config_fingerprint(tiny_config) == config_fingerprint(parallel)
    changed = tiny_config.replace(
        search=dataclasses.replace(tiny_config.search, max_iterations=31)
    )
    assert config_fingerprint(tiny_config) != config_fingerprint(changed)


def test_version_gate(tmp_path, small_instance, tiny_config):
    optimizer = make_optimizer(small_instance, tiny_config)
    meta = meta_for(optimizer)
    bad = dataclasses.replace(meta, version=999, stage="phase1a")
    path = tmp_path / "ck.pkl"
    save_checkpoint(path, OptimizerCheckpoint(bad, {"stage": "phase1a"}))
    with pytest.raises(CheckpointMismatchError, match="version"):
        load_checkpoint(path)


# ----------------------------------------------------------------------
# signals
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_real_sigterm_is_caught_and_checkpointed(
    tmp_path, small_instance, tiny_config
):
    """The interrupt_after hook delivers a *real* SIGTERM through the
    installed handler; previous handlers are restored afterwards."""
    previous = signal.getsignal(signal.SIGTERM)
    path = tmp_path / "ck.pkl"
    optimizer = make_optimizer(small_instance, tiny_config)
    with pytest.raises(OptimizerInterrupted) as excinfo:
        optimizer.run(checkpoint=path, checkpoint_every=3, interrupt_after=4)
    assert Path(excinfo.value.path) == path
    assert path.exists()
    assert signal.getsignal(signal.SIGTERM) == previous


def test_interrupt_after_requires_checkpoint(small_instance, tiny_config):
    optimizer = make_optimizer(small_instance, tiny_config)
    with pytest.raises(ValueError, match="interrupt_after"):
        optimizer.run(interrupt_after=3)
