"""Evaluator / optimizer integration of the unified scenario subsystem.

Pins the acceptance criteria of the refactor:

* legacy parity — every sweep routed through the legacy-equivalent
  ScenarioSet is bit-identical to the pre-refactor FailureSet sweep,
  including on an optimized table2-style arm;
* exact multi-arc scenario evaluation — incremental routing matches
  from-scratch routing on SRLG / regional / k-link / node scenarios,
  randomized over weight settings;
* traffic variants — a composed scenario equals evaluating the variant
  traffic through a dedicated evaluator, bit for bit;
* one sweep contract — serial, caching and parallel evaluators accept
  the same scenario collections and agree bitwise.
"""

import inspect

import numpy as np
import pytest

from repro.analysis.tables import scenario_kind_columns
from repro.config import ExecutionParams
from repro.core.evaluation import DtrEvaluator, ScenarioCosts
from repro.core.optimizer import RobustDtrOptimizer
from repro.core.parallel import CachingDtrEvaluator, ParallelDtrEvaluator
from repro.core.weights import WeightSetting
from repro.exp.common import run_arms
from repro.routing.failures import single_link_failures
from repro.scenarios import (
    GaussianSurge,
    GravityRescale,
    Scenario,
    ScenarioSet,
    cross,
    gaussian_surges,
    k_link_failures,
    legacy_failures,
    node_failures,
    regional_failures,
    srlg_failures,
)


def assert_evaluations_identical(a, b, context=""):
    assert a.cost.lam == b.cost.lam, context
    assert a.cost.phi == b.cost.phi, context
    assert a.sla.violations == b.sla.violations, context
    assert np.array_equal(a.loads_delay, b.loads_delay), context
    assert np.array_equal(a.loads_tput, b.loads_tput), context
    assert np.array_equal(
        a.pair_delays, b.pair_delays, equal_nan=True
    ), context


def _mixed_scenarios(network, seed=0) -> ScenarioSet:
    """A small set spanning every family shape (multi-arc + variants)."""
    return (
        srlg_failures(network, num_groups=3, group_size=2, seed=seed)
        + k_link_failures(network, k=2, max_scenarios=3, seed=seed)
        + regional_failures(network, num_regions=2, seed=seed)
        + node_failures(network, nodes=[0, 3])
        + gaussian_surges(count=2, seed=seed)
        + cross(
            srlg_failures(network, num_groups=1, group_size=2, seed=seed),
            [GaussianSurge(seed=seed + 7), GravityRescale(1.3)],
        )
    )


class TestLegacyParity:
    def test_wrapped_sweep_bitwise_equal(self, small_evaluator, rng):
        setting = WeightSetting.random(
            small_evaluator.network.num_arcs,
            small_evaluator.config.weights,
            rng,
        )
        legacy = single_link_failures(small_evaluator.network)
        wrapped = ScenarioSet.from_failures(legacy)
        direct = small_evaluator.evaluate_failures(setting, legacy)
        via_set = small_evaluator.evaluate_scenarios(setting, wrapped)
        assert len(direct) == len(via_set)
        for old, new in zip(direct.evaluations, via_set.evaluations):
            assert_evaluations_identical(old, new, old.scenario.label)
            assert new.kind == "link"

    @pytest.mark.slow
    def test_table2_arm_bitwise_equal(self, small_instance, tiny_config):
        """The table2 arm (optimize, sweep all single-link failures) is
        reproduced bit-identically through the ScenarioSet path."""
        network, traffic = small_instance
        from repro.exp.common import Instance

        instance = Instance(
            network=network, traffic=traffic, label="test", seed=0
        )
        outcome = run_arms(instance, tiny_config, seed=0)
        evaluator = DtrEvaluator(network, traffic, tiny_config)
        legacy = single_link_failures(network)
        assert outcome.all_failures.to_failure_set().scenarios == (
            legacy.scenarios
        )
        for setting in (
            outcome.robust_setting, outcome.regular_setting
        ):
            direct = evaluator.evaluate_failures(setting, legacy)
            via_set = evaluator.evaluate_scenarios(
                setting, outcome.all_failures
            )
            assert direct.total_cost == via_set.total_cost
            for old, new in zip(
                direct.evaluations, via_set.evaluations
            ):
                assert_evaluations_identical(
                    old, new, old.scenario.label
                )


class TestMultiArcIncrementalParity:
    def test_incremental_matches_scratch_on_all_families(
        self, small_instance, tiny_config, rng
    ):
        """Randomized: incremental evaluation of composed multi-arc and
        variant scenarios == from-scratch evaluation, bit for bit."""
        network, traffic = small_instance
        fast = DtrEvaluator(network, traffic, tiny_config)
        scratch = DtrEvaluator(
            network,
            traffic,
            tiny_config.replace(
                execution=ExecutionParams(incremental_routing=False)
            ),
        )
        scenarios = _mixed_scenarios(network, seed=1)
        for trial in range(3):
            setting = WeightSetting.random(
                network.num_arcs, tiny_config.weights, rng
            )
            fast_reuse = fast.evaluate_normal(setting)
            scratch_reuse = scratch.evaluate_normal(setting)
            for scenario in scenarios:
                got = fast.evaluate(setting, scenario, reuse=fast_reuse)
                expected = scratch.evaluate(
                    setting, scenario, reuse=scratch_reuse
                )
                assert_evaluations_identical(
                    got, expected, f"{scenario.label} trial {trial}"
                )


class TestTrafficVariants:
    def test_variant_scenario_equals_sibling_traffic(
        self, small_evaluator, random_setting
    ):
        variant = GaussianSurge(eps=0.2, seed=3)
        composed = Scenario(variant=variant, kind="surge")
        got = small_evaluator.evaluate(random_setting, composed)
        manual = small_evaluator.with_traffic(
            variant.apply(small_evaluator.traffic)
        )
        expected = manual.evaluate(random_setting)
        assert_evaluations_identical(got, expected)
        assert got.variant == variant
        assert got.kind == "surge"
        assert got.routing_delay is None and got.routing_tput is None

    def test_failure_times_variant_composition(
        self, small_evaluator, random_setting
    ):
        network = small_evaluator.network
        failure = single_link_failures(network)[0]
        variant = GravityRescale(1.4)
        composed = Scenario(
            failure=failure, variant=variant, kind="linkxrescale"
        )
        got = small_evaluator.evaluate(random_setting, composed)
        manual = small_evaluator.with_traffic(
            variant.apply(small_evaluator.traffic)
        )
        expected = manual.evaluate(random_setting, failure)
        assert_evaluations_identical(got, expected)

    def test_variant_reuse_never_leaks_into_base(
        self, small_evaluator, random_setting
    ):
        """A variant evaluation passed as ``reuse`` must be ignored, not
        poison the base-traffic computation."""
        variant_eval = small_evaluator.evaluate(
            random_setting, Scenario(variant=GravityRescale(2.0))
        )
        base = small_evaluator.evaluate_normal(random_setting)
        with_bad_reuse = small_evaluator.evaluate(
            random_setting, reuse=variant_eval
        )
        assert_evaluations_identical(base, with_bad_reuse)

    def test_close_releases_siblings(self, small_evaluator, random_setting):
        small_evaluator.evaluate(
            random_setting, Scenario(variant=GravityRescale(1.2))
        )
        assert small_evaluator._variant_evaluators
        small_evaluator.close()
        assert not small_evaluator._variant_evaluators


class TestUnifiedSweepContract:
    def test_signatures_match(self):
        """The serial/parallel signature drift is gone: one contract."""
        serial = inspect.signature(DtrEvaluator.evaluate_scenarios)
        parallel = inspect.signature(
            ParallelDtrEvaluator.evaluate_scenarios
        )
        assert list(serial.parameters) == list(parallel.parameters)
        serial_legacy = inspect.signature(DtrEvaluator.evaluate_failures)
        assert len(serial_legacy.parameters) == len(serial.parameters)
        assert "evaluate_failures" not in ParallelDtrEvaluator.__dict__

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_matches_serial_on_mixed_set(
        self, small_instance, tiny_config, rng, executor
    ):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=2)
        setting = WeightSetting.random(
            network.num_arcs, tiny_config.weights, rng
        )
        serial = DtrEvaluator(network, traffic, tiny_config)
        expected = serial.evaluate_scenarios(setting, scenarios)
        parallel_config = tiny_config.replace(
            execution=ExecutionParams(n_jobs=2, executor=executor)
        )
        with ParallelDtrEvaluator(
            network, traffic, parallel_config
        ) as parallel:
            got = parallel.evaluate_scenarios(setting, scenarios)
        assert len(got) == len(expected)
        for old, new in zip(expected.evaluations, got.evaluations):
            assert_evaluations_identical(old, new, old.scenario.label)
            assert new.kind == old.kind

    def test_caching_evaluator_handles_scenarioset(
        self, small_instance, tiny_config, rng
    ):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=3)
        setting = WeightSetting.random(
            network.num_arcs, tiny_config.weights, rng
        )
        serial = DtrEvaluator(network, traffic, tiny_config)
        caching = CachingDtrEvaluator(network, traffic, tiny_config)
        expected = serial.evaluate_scenarios(setting, scenarios)
        got = caching.evaluate_failures(setting, scenarios)
        for old, new in zip(expected.evaluations, got.evaluations):
            assert_evaluations_identical(old, new, old.scenario.label)


class TestScenarioCosts:
    def test_by_kind_partitions_and_sums(
        self, small_evaluator, random_setting
    ):
        scenarios = _mixed_scenarios(small_evaluator.network, seed=4)
        costs = small_evaluator.evaluate_scenarios(
            random_setting, scenarios
        )
        assert isinstance(costs, ScenarioCosts)
        parts = costs.by_kind()
        assert set(parts) == set(scenarios.kinds())
        assert sum(len(p) for p in parts.values()) == len(costs)
        total = sum(p.total_cost.lam for p in parts.values())
        assert total == pytest.approx(costs.total_cost.lam)

    def test_kind_columns(self, small_evaluator, random_setting):
        scenarios = _mixed_scenarios(small_evaluator.network, seed=5)
        costs = small_evaluator.evaluate_scenarios(
            random_setting, scenarios
        )
        columns = scenario_kind_columns(costs)
        assert any(key.startswith("viol[srlg]") for key in columns)
        assert any(key.startswith("top10%[") for key in columns)
        # Single-kind sweeps add no breakdown columns.
        single = small_evaluator.evaluate_scenarios(
            random_setting,
            legacy_failures(small_evaluator.network),
        )
        assert scenario_kind_columns(single) == {}


class TestOptimizerOverScenarioSet:
    @pytest.mark.slow
    def test_optimizes_against_explicit_set(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        scenarios = srlg_failures(
            network, num_groups=3, group_size=2, seed=6
        ) + gaussian_surges(count=1, seed=6)
        optimizer = RobustDtrOptimizer(
            network,
            traffic,
            tiny_config,
            rng=np.random.default_rng(6),
            scenarios=scenarios,
        )
        try:
            result = optimizer.run()
        finally:
            optimizer.close()
        assert result.all_failures is scenarios
        assert result.critical_failures is scenarios
        assert len(result.phase2.failure_evaluation) == len(scenarios)
        assert result.phase2.constraints.satisfied_by(
            result.phase2.normal_cost
        )
        # The reported K_fail matches an independent sweep of the set.
        check = DtrEvaluator(network, traffic, tiny_config)
        sweep = check.evaluate_scenarios(
            result.robust_setting, scenarios
        )
        assert sweep.total_cost == result.phase2.best_kfail
