"""Tests for the lexicographic cost ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lexicographic import (
    CostPair,
    relative_improvement,
)


costs = st.builds(
    CostPair,
    st.floats(0, 1e6, allow_nan=False),
    st.floats(0, 1e6, allow_nan=False),
)


class TestOrdering:
    def test_lambda_dominates(self):
        assert CostPair(1.0, 100.0) < CostPair(2.0, 0.0)

    def test_phi_breaks_ties(self):
        assert CostPair(5.0, 1.0) < CostPair(5.0, 2.0)

    def test_equal_pairs_not_less(self):
        a = CostPair(3.0, 4.0)
        b = CostPair(3.0, 4.0)
        assert not a < b
        assert a <= b
        assert a >= b

    def test_tolerance_on_lambda(self):
        a = CostPair(1.0, 5.0)
        b = CostPair(1.0 + 1e-9, 4.0)
        # lambda equal within tolerance -> phi decides
        assert b < a

    def test_is_better_than(self):
        assert CostPair(0.0, 1.0).is_better_than(CostPair(0.0, 2.0))
        assert not CostPair(0.0, 2.0).is_better_than(CostPair(0.0, 2.0))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            CostPair(float("nan"), 0.0)

    @settings(max_examples=60, deadline=None)
    @given(a=costs, b=costs)
    def test_total_comparability(self, a, b):
        assert (a < b) + (b < a) + (a.lam_equals(b) and a.phi_equals(b)) >= 1

    @settings(max_examples=60, deadline=None)
    @given(a=costs, b=costs, c=costs)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c


class TestArithmetic:
    def test_addition(self):
        assert CostPair(1.0, 2.0) + CostPair(3.0, 4.0) == CostPair(4.0, 6.0)

    def test_zero_identity(self):
        a = CostPair(5.0, 6.0)
        assert a + CostPair.zero() == a

    def test_total(self):
        total = CostPair.total([CostPair(1, 1), CostPair(2, 2)])
        assert total == CostPair(3.0, 3.0)

    def test_total_empty(self):
        assert CostPair.total([]) == CostPair.zero()


class TestRelativeImprovement:
    def test_lambda_improvement(self):
        before = CostPair(100.0, 50.0)
        after = CostPair(90.0, 60.0)
        assert relative_improvement(before, after) == pytest.approx(0.1)

    def test_phi_improvement_when_lambda_equal(self):
        before = CostPair(100.0, 50.0)
        after = CostPair(100.0, 45.0)
        assert relative_improvement(before, after) == pytest.approx(0.1)

    def test_no_improvement_is_zero(self):
        before = CostPair(100.0, 50.0)
        assert relative_improvement(before, before) == 0.0
        assert relative_improvement(before, CostPair(110.0, 0.0)) == 0.0

    def test_improvement_from_zero_lambda(self):
        before = CostPair(0.0, 50.0)
        after = CostPair(0.0, 40.0)
        assert relative_improvement(before, after) == pytest.approx(0.2)
