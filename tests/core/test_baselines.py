"""Tests for the baseline selectors and optimizers."""

import numpy as np
import pytest

from repro.core.baselines import (
    fluctuation_critical_arcs,
    load_based_critical_arcs,
    node_failure_optimize,
    optimize_with_critical_arcs,
    random_critical_arcs,
    regular_optimize,
)
from repro.core.sampling import CostSampleStore


class TestRandomSelection:
    def test_size_and_range(self, small_evaluator, rng):
        arcs = random_critical_arcs(small_evaluator.network, 5, rng)
        assert len(arcs) == 5
        assert len(set(arcs)) == 5
        assert all(0 <= a < small_evaluator.network.num_arcs for a in arcs)

    def test_sorted_output(self, small_evaluator, rng):
        arcs = random_critical_arcs(small_evaluator.network, 6, rng)
        assert list(arcs) == sorted(arcs)

    def test_invalid_size(self, small_evaluator, rng):
        with pytest.raises(ValueError):
            random_critical_arcs(small_evaluator.network, 0, rng)


class TestLoadBasedSelection:
    def test_picks_most_loaded(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        arcs = load_based_critical_arcs(
            small_evaluator, random_setting, 4
        )
        chosen_util = outcome.utilization[list(arcs)]
        others = np.delete(outcome.utilization, list(arcs))
        assert chosen_util.min() >= others.max() - 1e-12

    def test_size_validated(self, small_evaluator, random_setting):
        with pytest.raises(ValueError):
            load_based_critical_arcs(small_evaluator, random_setting, 0)


class TestFluctuationSelection:
    def test_prefers_bimodal_arcs(self):
        store = CostSampleStore(3)
        # arc 0: all middling; arc 1: spread across both regions
        for v in [50.0] * 10:
            store.add(0, v, v)
        for v in [0.0, 100.0] * 5:
            store.add(1, v, v)
        for v in [49.0] * 10:
            store.add(2, v, v)
        arcs = fluctuation_critical_arcs(store, 1)
        assert arcs == (1,)

    def test_empty_store_degrades(self):
        store = CostSampleStore(4)
        arcs = fluctuation_critical_arcs(store, 2)
        assert len(arcs) == 2

    def test_quantile_validation(self):
        store = CostSampleStore(2)
        with pytest.raises(ValueError):
            fluctuation_critical_arcs(
                store, 1, good_quantile=0.8, bad_quantile=0.2
            )


@pytest.mark.slow  # each baseline runs a full failure-sweep optimization
class TestBaselineOptimizers:
    @pytest.fixture(scope="class")
    def pipeline(self):
        from repro.config import (
            OptimizerConfig,
            SamplingParams,
            SearchParams,
            WeightParams,
        )
        from repro.core.evaluation import DtrEvaluator
        from repro.topology import rand_topology, scale_to_diameter
        from repro.traffic import dtr_traffic, scale_to_utilization

        gen = np.random.default_rng(17)
        network = scale_to_diameter(rand_topology(10, 4.0, gen), 0.025)
        traffic = scale_to_utilization(
            network, dtr_traffic(10, gen, 1.0), 0.4, "mean"
        )
        config = OptimizerConfig(
            weights=WeightParams(w_max=12),
            search=SearchParams(
                phase1_diversification_interval=3,
                phase1_diversifications=1,
                phase2_diversification_interval=2,
                phase2_diversifications=1,
                improvement_cutoff=0.01,
                arcs_per_iteration_fraction=0.5,
                round_iteration_cap_factor=2,
                max_iterations=20,
            ),
            sampling=SamplingParams(
                tau=1, min_samples_per_link=2, max_extra_samples=300
            ),
        )
        evaluator = DtrEvaluator(network, traffic, config)
        phase1 = regular_optimize(evaluator, np.random.default_rng(2))
        return evaluator, phase1

    def test_regular_optimize_is_phase1(self, pipeline):
        evaluator, phase1 = pipeline
        assert phase1.best_setting.num_arcs == evaluator.network.num_arcs
        assert phase1.pool

    def test_optimize_with_custom_arcs(self, pipeline, rng):
        evaluator, phase1 = pipeline
        arcs = random_critical_arcs(evaluator.network, 4, rng)
        result = optimize_with_critical_arcs(
            evaluator, phase1, arcs, np.random.default_rng(3)
        )
        assert result.constraints.satisfied_by(result.normal_cost)

    def test_optimize_with_empty_touch_rejected(self, pipeline, rng):
        evaluator, phase1 = pipeline
        with pytest.raises(ValueError, match="touches no"):
            optimize_with_critical_arcs(
                evaluator, phase1, [], np.random.default_rng(3)
            )

    def test_node_failure_optimize(self, pipeline):
        evaluator, phase1 = pipeline
        result = node_failure_optimize(
            evaluator, phase1, np.random.default_rng(4), nodes=[0, 1, 2]
        )
        assert len(result.failure_evaluation) == 3
        assert result.constraints.satisfied_by(result.normal_cost)
