"""Tests for local-search scaffolding (controller, pool)."""

import pytest

from repro.core.lexicographic import CostPair
from repro.core.local_search import (
    AcceptablePool,
    DiversificationController,
    SearchStats,
)
from repro.core.weights import WeightSetting


class TestDiversificationController:
    def test_diversifies_after_interval(self):
        ctrl = DiversificationController(interval=3, min_rounds=2, cutoff=0.01)
        assert not ctrl.note_iteration(improved=False)
        assert not ctrl.note_iteration(improved=False)
        assert ctrl.note_iteration(improved=False)

    def test_improvement_resets_counter(self):
        ctrl = DiversificationController(interval=2, min_rounds=2, cutoff=0.01)
        assert not ctrl.note_iteration(improved=False)
        assert not ctrl.note_iteration(improved=True)
        assert not ctrl.note_iteration(improved=False)
        assert ctrl.note_iteration(improved=False)

    def test_round_cap_forces_diversification(self):
        ctrl = DiversificationController(
            interval=5, min_rounds=1, cutoff=0.01, cap_factor=2
        )
        # 10 improving iterations never trip the no-improve rule,
        # but the cap (5*2) does.
        outcomes = [ctrl.note_iteration(improved=True) for _ in range(10)]
        assert outcomes[-1] is True
        assert not any(outcomes[:-1])

    def test_stop_rule_consecutive_quiet_rounds(self):
        ctrl = DiversificationController(interval=1, min_rounds=2, cutoff=0.01)
        ctrl.note_diversification(0.001)
        assert not ctrl.should_stop()
        ctrl.note_diversification(0.5)  # loud round resets
        ctrl.note_diversification(0.001)
        assert not ctrl.should_stop()
        ctrl.note_diversification(0.001)
        assert ctrl.should_stop()
        assert ctrl.rounds == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DiversificationController(interval=0, min_rounds=1, cutoff=0.1)
        with pytest.raises(ValueError):
            DiversificationController(interval=1, min_rounds=1, cutoff=-0.1)


class TestAcceptablePool:
    def test_qualification_rule(self):
        pool = AcceptablePool(chi=0.2, capacity=4)
        best = CostPair(0.0, 100.0)
        assert pool.qualifies(CostPair(0.0, 115.0), best)
        assert not pool.qualifies(CostPair(0.0, 121.0), best)
        assert not pool.qualifies(CostPair(1.0, 100.0), best)

    def test_offer_stores_copy(self):
        pool = AcceptablePool(chi=0.2, capacity=4)
        ws = WeightSetting.uniform(5, 3)
        best = CostPair(0.0, 10.0)
        assert pool.offer(ws, CostPair(0.0, 11.0), best)
        ws.set_arc(0, 9, 9)  # mutating the original must not affect pool
        assert pool.best_first()[0].setting.arc_pair(0) == (3, 3)

    def test_duplicates_rejected(self):
        pool = AcceptablePool(chi=0.2, capacity=4)
        ws = WeightSetting.uniform(5, 3)
        best = CostPair(0.0, 10.0)
        assert pool.offer(ws, CostPair(0.0, 11.0), best)
        assert not pool.offer(ws, CostPair(0.0, 11.0), best)
        assert len(pool) == 1

    def test_capacity_evicts_worst(self):
        pool = AcceptablePool(chi=1.0, capacity=2)
        best = CostPair(0.0, 10.0)
        for i, phi in enumerate([18.0, 12.0, 15.0]):
            pool.offer(
                WeightSetting.uniform(4, i + 1), CostPair(0.0, phi), best
            )
        assert len(pool) == 2
        phis = [r.cost.phi for r in pool.best_first()]
        assert phis == [12.0, 15.0]

    def test_rebase_evicts_stale(self):
        pool = AcceptablePool(chi=0.2, capacity=4)
        best = CostPair(0.0, 100.0)
        pool.offer(WeightSetting.uniform(4, 1), CostPair(0.0, 118.0), best)
        pool.offer(WeightSetting.uniform(4, 2), CostPair(0.0, 101.0), best)
        pool.rebase(CostPair(0.0, 90.0))
        # 118 > 1.2*90, evicted; 101 <= 108 stays
        assert len(pool) == 1
        assert pool.best_first()[0].cost.phi == 101.0

    def test_is_empty(self):
        pool = AcceptablePool(chi=0.2, capacity=2)
        assert pool.is_empty()


class TestSearchStats:
    def test_defaults(self):
        stats = SearchStats()
        assert stats.iterations == 0
        assert stats.evaluations == 0
        assert stats.pruned_evaluations == 0
