"""Evaluator-level parity of the incremental delta-rerouting fast path.

``incremental_routing`` (on by default) must never change a computed
bit: candidate moves through :meth:`DtrEvaluator.evaluate_move`, failure
sweeps, and whole seeded experiments must match the from-scratch
evaluator exactly.
"""

import numpy as np
import pytest

from repro.config import ExecutionParams
from repro.core.evaluation import DtrEvaluator
from repro.core.perturbation import random_phase2_move
from repro.core.weights import WeightSetting
from repro.routing.failures import (
    single_link_failures,
    single_node_failures,
)


def _scratch_evaluator(evaluator: DtrEvaluator) -> DtrEvaluator:
    config = evaluator.config.replace(
        execution=ExecutionParams(incremental_routing=False)
    )
    return DtrEvaluator(evaluator.network, evaluator.traffic, config)


def assert_evaluations_identical(a, b, context=""):
    assert a.cost.lam == b.cost.lam, context
    assert a.cost.phi == b.cost.phi, context
    assert a.sla.violations == b.sla.violations, context
    assert a.sla.disconnected == b.sla.disconnected, context
    assert np.array_equal(a.loads_delay, b.loads_delay), context
    assert np.array_equal(a.loads_tput, b.loads_tput), context
    assert np.array_equal(a.arc_delay, b.arc_delay), context
    assert np.array_equal(
        a.pair_delays, b.pair_delays, equal_nan=True
    ), context
    assert np.array_equal(a.utilization, b.utilization), context


class TestEvaluateMoveParity:
    def test_move_sequence_matches_scratch(self, small_evaluator, rng):
        """Moves, reverts and sweeps: incremental == from-scratch."""
        scratch = _scratch_evaluator(small_evaluator)
        network = small_evaluator.network
        config = small_evaluator.config
        failures = list(single_link_failures(network))
        nodes = list(single_node_failures(network))
        setting = WeightSetting.random(
            network.num_arcs, config.weights, rng
        )
        cur_fast = small_evaluator.evaluate_normal(setting)
        cur_slow = scratch.evaluate_normal(setting)
        assert_evaluations_identical(cur_fast, cur_slow, "initial")
        for step in range(25):
            arc = int(rng.integers(0, network.num_arcs))
            move = random_phase2_move(setting, arc, config.weights, rng)
            if not move.changes_anything:
                continue
            move.apply(setting)
            cand_fast = small_evaluator.evaluate_move(
                setting, move, reuse=cur_fast
            )
            cand_slow = scratch.evaluate_normal(setting)
            assert_evaluations_identical(
                cand_fast, cand_slow, f"move {step}"
            )
            for scenario in failures[::7] + nodes[:2]:
                got = small_evaluator.evaluate(
                    setting, scenario, reuse=cand_fast
                )
                expected = scratch.evaluate(
                    setting, scenario, reuse=cand_slow
                )
                assert_evaluations_identical(
                    got, expected, f"{scenario.label} at move {step}"
                )
            if rng.random() < 0.5:
                move.revert(setting)
                small_evaluator.revert_move(setting, move)
            else:
                cur_fast, cur_slow = cand_fast, cand_slow

    def test_evaluate_move_equals_evaluate_normal(
        self, small_evaluator, random_setting, rng
    ):
        arc = int(rng.integers(0, small_evaluator.network.num_arcs))
        base = small_evaluator.evaluate_normal(random_setting)
        move = random_phase2_move(
            random_setting, arc, small_evaluator.config.weights, rng
        )
        move.apply(random_setting)
        via_move = small_evaluator.evaluate_move(
            random_setting, move, reuse=base
        )
        via_normal = _scratch_evaluator(
            small_evaluator
        ).evaluate_normal(random_setting)
        assert_evaluations_identical(via_move, via_normal)

    def test_revert_move_is_noop_without_incremental(
        self, small_instance, tiny_config, rng
    ):
        network, traffic = small_instance
        config = tiny_config.replace(
            execution=ExecutionParams(incremental_routing=False)
        )
        evaluator = DtrEvaluator(network, traffic, config)
        setting = WeightSetting.random(
            network.num_arcs, config.weights, rng
        )
        move = random_phase2_move(setting, 0, config.weights, rng)
        move.apply(setting)
        outcome = evaluator.evaluate_move(setting, move)
        assert outcome.scenario.is_normal
        move.revert(setting)
        evaluator.revert_move(setting, move)  # must not raise


class TestFailureSweepParity:
    def test_full_sweep_bit_identical(self, small_evaluator, rng):
        scratch = _scratch_evaluator(small_evaluator)
        network = small_evaluator.network
        failures = single_link_failures(network)
        setting = WeightSetting.random(
            network.num_arcs, small_evaluator.config.weights, rng
        )
        fast = small_evaluator.evaluate_failures(setting, failures)
        slow = scratch.evaluate_failures(setting, failures)
        assert fast.total_cost.lam == slow.total_cost.lam
        assert fast.total_cost.phi == slow.total_cost.phi
        for a, b in zip(fast.evaluations, slow.evaluations):
            assert_evaluations_identical(a, b, a.scenario.label)

    def test_node_failure_sweep_bit_identical(self, small_evaluator, rng):
        scratch = _scratch_evaluator(small_evaluator)
        network = small_evaluator.network
        failures = single_node_failures(network)
        setting = WeightSetting.random(
            network.num_arcs, small_evaluator.config.weights, rng
        )
        fast = small_evaluator.evaluate_failures(setting, failures)
        slow = scratch.evaluate_failures(setting, failures)
        for a, b in zip(fast.evaluations, slow.evaluations):
            assert_evaluations_identical(a, b, a.scenario.label)


@pytest.mark.slow
class TestSeededPhasesUnchanged:
    def test_phase1_and_phase2_identical(self, small_instance, tiny_config):
        """The whole seeded two-phase search is invariant to the knob."""
        from repro.core.phase1 import run_phase1
        from repro.core.phase2 import RobustConstraints, run_phase2

        network, traffic = small_instance
        failures = single_link_failures(network)
        results = {}
        for incremental in (True, False):
            config = tiny_config.replace(
                execution=ExecutionParams(incremental_routing=incremental)
            )
            evaluator = DtrEvaluator(network, traffic, config)
            p1 = run_phase1(evaluator, np.random.default_rng(7))
            constraints = RobustConstraints(
                p1.best_cost.lam,
                p1.best_cost.phi,
                config.sampling.chi,
            )
            p2 = run_phase2(
                evaluator,
                failures,
                p1.pool,
                constraints,
                np.random.default_rng(8),
            )
            results[incremental] = (p1, p2)
        p1_fast, p2_fast = results[True]
        p1_slow, p2_slow = results[False]
        assert p1_fast.best_cost == p1_slow.best_cost
        assert p1_fast.best_setting == p1_slow.best_setting
        assert (
            p1_fast.selection.critical_arcs
            == p1_slow.selection.critical_arcs
        )
        assert p2_fast.best_kfail == p2_slow.best_kfail
        assert p2_fast.best_setting == p2_slow.best_setting
        assert p2_fast.stats.evaluations == p2_slow.stats.evaluations


@pytest.mark.slow
class TestSeededExperimentUnchanged:
    def test_table2_arm_identical_with_fast_path(self):
        """One seeded Table-II arm produces identical numbers either way.

        This is the Table-II computation (run_arms + SLA stats over all
        single-link failures) for one quick-preset topology, pinned
        incremental-on == incremental-off.
        """
        from repro.analysis.metrics import SlaViolationStats
        from repro.exp.common import evaluator_for, make_instance, run_arms
        from repro.exp.presets import QUICK

        instance = make_instance("rand", 10, 4.0, seed=1)
        rows = {}
        for incremental in (True, False):
            config = QUICK.config.replace(
                execution=ExecutionParams(incremental_routing=incremental)
            )
            outcome = run_arms(instance, config, seed=1)
            evaluator = evaluator_for(instance, config)
            rob = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.robust_setting, outcome.all_failures
                )
            )
            reg = SlaViolationStats.from_failures(
                evaluator.evaluate_failures(
                    outcome.regular_setting, outcome.all_failures
                )
            )
            rows[incremental] = (
                rob.mean,
                rob.top10_mean,
                reg.mean,
                reg.top10_mean,
                outcome.robust_setting.key(),
                outcome.regular_setting.key(),
            )
        assert rows[True] == rows[False]
