"""Costs-only sweeps and the (setting, scenario-set) sweep memo."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.evaluation import (
    DtrEvaluator,
    SweepMemoStats,
    compact_evaluation,
)
from repro.core.parallel import ParallelDtrEvaluator
from repro.core.weights import WeightSetting
from repro.scenarios.generators import legacy_failures


@pytest.fixture
def failures(small_evaluator):
    return legacy_failures(small_evaluator.network)


def make_setting(evaluator, seed):
    return WeightSetting.random(
        evaluator.network.num_arcs,
        evaluator.config.weights,
        np.random.default_rng(seed),
    )


def test_costs_match_full_sweep(small_evaluator, failures):
    """Costs-only sweeps compute the same scalars as full sweeps, with
    the heavy per-scenario arrays dropped."""
    setting = make_setting(small_evaluator, 11)
    full = small_evaluator.evaluate_scenarios(setting, failures)
    compact = small_evaluator.evaluate_scenario_costs(setting, failures)
    assert len(compact.evaluations) == len(full.evaluations)
    for got, want in zip(compact.evaluations, full.evaluations):
        assert got.cost == want.cost
        assert got.sla == want.sla
        assert got.scenario == want.scenario
        assert got.loads_delay is None
        assert got.pair_delays is None
        assert got.routing_delay is None
    assert compact.total_cost == full.total_cost


def test_compact_evaluation_idempotent(small_evaluator, random_setting):
    evaluation = small_evaluator.evaluate_normal(random_setting)
    compact = compact_evaluation(evaluation)
    assert compact.loads_delay is None
    assert compact_evaluation(compact) is compact
    assert compact.cost == evaluation.cost


def test_repeat_sweep_hits_memo(small_evaluator, failures):
    """The second identical sweep is a memo hit: same object back, no
    additional evaluations counted."""
    setting = make_setting(small_evaluator, 5)
    first = small_evaluator.evaluate_scenario_costs(setting, failures)
    evaluations_after_first = small_evaluator.num_evaluations
    stats = small_evaluator.sweep_memo_stats
    assert stats.misses >= 1
    assert stats.hits == 0

    second = small_evaluator.evaluate_scenario_costs(setting, failures)
    assert second is first
    assert small_evaluator.sweep_memo_stats.hits == 1
    assert small_evaluator.num_evaluations == evaluations_after_first


def test_memo_distinguishes_settings_and_sets(small_evaluator, failures):
    setting_a = make_setting(small_evaluator, 1)
    setting_b = make_setting(small_evaluator, 2)
    subset = list(failures)[:3]
    small_evaluator.evaluate_scenario_costs(setting_a, failures)
    small_evaluator.evaluate_scenario_costs(setting_b, failures)
    small_evaluator.evaluate_scenario_costs(setting_a, subset)
    assert small_evaluator.sweep_memo_stats.hits == 0
    assert small_evaluator.sweep_memo_stats.misses == 3
    small_evaluator.evaluate_scenario_costs(setting_a, subset)
    assert small_evaluator.sweep_memo_stats.hits == 1


def test_memo_stats_arithmetic():
    stats = SweepMemoStats(hits=3, misses=1)
    assert stats.lookups == 4
    assert stats.hit_rate == 0.75
    total = stats + SweepMemoStats(hits=1, misses=3)
    assert total == SweepMemoStats(hits=4, misses=4)
    assert SweepMemoStats().hit_rate == 0.0


@pytest.mark.parallel
def test_parallel_costs_only_parity(small_instance, tiny_config, failures):
    """The parallel costs-only sweep (workers fold locally) matches the
    serial full sweep bit-for-bit on every scalar."""
    network, traffic = small_instance
    serial = DtrEvaluator(network, traffic, tiny_config)
    parallel_config = tiny_config.replace(
        execution=dataclasses.replace(tiny_config.execution, n_jobs=2)
    )
    setting = make_setting(serial, 21)
    expected = serial.evaluate_scenarios(setting, failures)
    with ParallelDtrEvaluator(network, traffic, parallel_config) as pool:
        compact = pool.evaluate_scenario_costs(setting, failures)
        assert [e.cost for e in compact.evaluations] == [
            e.cost for e in expected.evaluations
        ]
        assert [e.sla for e in compact.evaluations] == [
            e.sla for e in expected.evaluations
        ]
        assert compact.total_cost == expected.total_cost
        # And the memo serves the repeat without touching the pool.
        again = pool.evaluate_scenario_costs(setting, failures)
        assert again is compact
        assert pool.sweep_memo_stats.hits == 1


@pytest.mark.slow
def test_phase2_run_reports_memo_stats(small_instance, tiny_config):
    """An end-to-end run goes through the costs-only path: the memo sees
    lookups, and the counter is exposed cache_stats-style."""
    from repro.core.optimizer import RobustDtrOptimizer

    network, traffic = small_instance
    optimizer = RobustDtrOptimizer(
        network, traffic, tiny_config, rng=np.random.default_rng(4)
    )
    optimizer.run()
    stats = optimizer.evaluator.sweep_memo_stats
    assert stats.lookups > 0
    assert stats.misses >= 1
    assert 0.0 <= stats.hit_rate <= 1.0
