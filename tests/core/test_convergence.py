"""Tests for the rank-convergence tracker."""

import numpy as np
import pytest

from repro.core.convergence import (
    RankConvergenceTracker,
    rank_positions,
    weighted_rank_change,
)
from repro.core.criticality import CriticalityEstimate


def estimate_from(rho: np.ndarray) -> CriticalityEstimate:
    rho = np.asarray(rho, dtype=float)
    return CriticalityEstimate(
        rho_lam=rho,
        rho_phi=rho,
        tail_lam=np.ones_like(rho),
        tail_phi=np.ones_like(rho),
        sample_counts=np.full(rho.shape, 5),
    )


class TestRankPositions:
    def test_inverts_ranking(self):
        ranking = np.asarray([2, 0, 1])
        positions = rank_positions(ranking)
        assert positions.tolist() == [1, 2, 0]


class TestWeightedRankChange:
    def test_identical_rankings_zero(self):
        ranking = np.asarray([0, 1, 2, 3])
        assert weighted_rank_change(ranking, ranking) == 0.0

    def test_single_swap(self):
        a = np.asarray([0, 1, 2, 3])
        b = np.asarray([1, 0, 2, 3])
        # two arcs moved by 1: S = (1 + 1) weighted by 1/2 each = 1
        assert weighted_rank_change(a, b) == pytest.approx(1.0)

    def test_full_reversal_large(self):
        a = np.arange(10)
        b = a[::-1].copy()
        assert weighted_rank_change(a, b) > 5.0

    def test_weighting_emphasizes_large_moves(self):
        # one arc moves 4 positions, others shift by 1
        a = np.asarray([0, 1, 2, 3, 4])
        b = np.asarray([1, 2, 3, 4, 0])
        uniform_mean = np.abs(
            rank_positions(a) - rank_positions(b)
        ).mean()
        weighted = weighted_rank_change(a, b)
        assert weighted > uniform_mean

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_rank_change(np.arange(3), np.arange(4))


class TestTracker:
    def test_not_converged_before_two_updates(self):
        tracker = RankConvergenceTracker(threshold=2.0)
        assert not tracker.converged
        tracker.update(estimate_from([3.0, 2.0, 1.0]))
        assert not tracker.converged
        assert tracker.updates == 1

    def test_converges_on_stable_ranks(self):
        tracker = RankConvergenceTracker(threshold=2.0)
        tracker.update(estimate_from([3.0, 2.0, 1.0]))
        tracker.update(estimate_from([3.1, 2.1, 1.1]))
        assert tracker.converged
        assert tracker.last_indices == (0.0, 0.0)

    def test_detects_instability(self):
        tracker = RankConvergenceTracker(threshold=1.0)
        tracker.update(estimate_from(np.arange(10.0)))
        tracker.update(estimate_from(np.arange(10.0)[::-1]))
        assert not tracker.converged

    def test_reconverges_after_stabilizing(self):
        tracker = RankConvergenceTracker(threshold=1.0)
        tracker.update(estimate_from(np.arange(10.0)))
        tracker.update(estimate_from(np.arange(10.0)[::-1]))
        assert not tracker.converged
        tracker.update(estimate_from(np.arange(10.0)[::-1]))
        assert tracker.converged

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            RankConvergenceTracker(threshold=-1.0)
