"""Unit tests for Phase-2 internals: ordering, pruning, reuse."""

import pytest

from repro.core.lexicographic import CostPair
from repro.core.local_search import SearchStats
from repro.core.phase2 import _ordered_sweep, bounded_failure_cost
from repro.routing.failures import single_link_failures


class TestOrderedSweep:
    def test_orders_scenarios_worst_first(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        stats = SearchStats()
        ordered, total = _ordered_sweep(
            small_evaluator, random_setting, failures, stats
        )
        assert len(ordered) == len(failures)
        # recompute per-scenario costs and verify the ordering keys
        costs = [
            small_evaluator.evaluate(random_setting, s).cost
            for s in ordered
        ]
        keys = [(-c.lam, -c.phi) for c in costs]
        assert keys == sorted(keys)
        # and the reported total matches the component-wise sum
        assert total.lam == pytest.approx(sum(c.lam for c in costs))
        assert total.phi == pytest.approx(sum(c.phi for c in costs))

    def test_total_invariant_under_ordering(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        stats = SearchStats()
        _, total = _ordered_sweep(
            small_evaluator, random_setting, failures, stats
        )
        direct = small_evaluator.evaluate_failures(
            random_setting, failures
        ).total_cost
        assert total.lam == pytest.approx(direct.lam)
        assert total.phi == pytest.approx(direct.phi, rel=1e-12)


class TestBoundedCostWithReuse:
    def test_reuse_does_not_change_result(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        normal = small_evaluator.evaluate_normal(random_setting)
        without = bounded_failure_cost(
            small_evaluator, random_setting, failures, None
        )
        with_reuse = bounded_failure_cost(
            small_evaluator, random_setting, failures, None, reuse=normal
        )
        assert without is not None and with_reuse is not None
        assert without.lam == pytest.approx(with_reuse.lam)
        assert without.phi == pytest.approx(with_reuse.phi, rel=1e-12)

    def test_pruning_counts_in_stats(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        stats = SearchStats()
        result = bounded_failure_cost(
            small_evaluator,
            random_setting,
            failures,
            CostPair(-1.0, -1.0),
            stats,
        )
        assert result is None
        assert stats.pruned_evaluations == 1
        # pruning on the first scenario means exactly one evaluation
        assert stats.evaluations == 1

    def test_exact_bound_not_pruned_to_none_when_equal(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        exact = bounded_failure_cost(
            small_evaluator, random_setting, failures, None
        )
        assert exact is not None
        # a bound exactly equal to the final cost must not prune (the
        # candidate ties, it does not exceed)
        again = bounded_failure_cost(
            small_evaluator, random_setting, failures, exact
        )
        assert again is not None
        assert again.lam == pytest.approx(exact.lam)
