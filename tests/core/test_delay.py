"""Tests for the link-delay model (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DelayModelParams
from repro.core.delay import arc_delays, mm1_term, queueing_delay_at


class TestMm1Term:
    def test_matches_hyperbolic_below_linearization(self):
        rho = np.asarray([0.1, 0.5, 0.9])
        out = mm1_term(rho, 0.99)
        np.testing.assert_allclose(out, rho / (1 - rho))

    def test_tangent_beyond_linearization(self):
        out = mm1_term(np.asarray([0.99, 1.0, 1.1]), 0.99)
        g99 = 0.99 / 0.01
        slope = 1.0 / 0.01**2
        np.testing.assert_allclose(
            out, [g99, g99 + slope * 0.01, g99 + slope * 0.11]
        )

    def test_continuous_at_linearization(self):
        eps = 1e-9
        below = mm1_term(np.asarray([0.99 - eps]), 0.99)[0]
        above = mm1_term(np.asarray([0.99 + eps]), 0.99)[0]
        assert above == pytest.approx(below, rel=1e-4)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0.0, 2.0))
    def test_monotone_nondecreasing(self, rho):
        a = mm1_term(np.asarray([rho]), 0.99)[0]
        b = mm1_term(np.asarray([rho + 0.01]), 0.99)[0]
        assert b >= a


class TestArcDelays:
    def test_propagation_only_below_threshold(self):
        params = DelayModelParams()
        loads = np.asarray([0.5e8, 4.7e8])  # 10% and 94% of 500 Mbps
        cap = np.full(2, 5e8)
        prop = np.asarray([0.005, 0.010])
        delays = arc_delays(loads, cap, prop, params)
        np.testing.assert_allclose(delays, prop)

    def test_queueing_added_above_threshold(self):
        params = DelayModelParams()
        loads = np.asarray([4.8e8])  # 96%
        cap = np.asarray([5e8])
        prop = np.asarray([0.005])
        delays = arc_delays(loads, cap, prop, params)
        assert delays[0] > 0.005

    def test_paper_sanity_95_percent_under_half_ms(self):
        """Section V-A3: 95% load on 500 Mbps ~ queueing < 0.5 ms."""
        q = queueing_delay_at(0.951, 5e8)
        assert 0 < q < 0.5e-3

    def test_queueing_zero_below_threshold(self):
        assert queueing_delay_at(0.90, 5e8) == 0.0

    def test_overload_is_finite(self):
        params = DelayModelParams()
        delays = arc_delays(
            np.asarray([6e8]), np.asarray([5e8]), np.asarray([0.005]), params
        )
        assert np.isfinite(delays[0])
        assert delays[0] > 0.02  # heavily congested

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            arc_delays(np.ones(3), np.ones(2), np.ones(3))

    @settings(max_examples=40, deadline=None)
    @given(
        util=st.floats(0.0, 1.5),
        extra=st.floats(0.001, 0.2),
    )
    def test_monotone_in_load(self, util, extra):
        cap = np.asarray([5e8])
        prop = np.asarray([0.005])
        lo = arc_delays(np.asarray([util * 5e8]), cap, prop)[0]
        hi = arc_delays(np.asarray([(util + extra) * 5e8]), cap, prop)[0]
        assert hi >= lo


class TestDelayParamsValidation:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            DelayModelParams(
                low_load_threshold=0.995, linearization_utilization=0.99
            )

    def test_linearization_below_one(self):
        with pytest.raises(ValueError):
            DelayModelParams(linearization_utilization=1.0)

    def test_positive_packet_size(self):
        with pytest.raises(ValueError):
            DelayModelParams(packet_size_bits=0)
