"""Integration test: probabilistic robust optimization end to end."""

import numpy as np
import pytest

from repro.core.phase1 import run_phase1
from repro.core.phase2 import RobustConstraints
from repro.core.probabilistic import (
    WeightedFailureSet,
    expected_failure_cost,
    length_proportional_probabilities,
    probabilistic_robust_optimize,
    select_probabilistic_critical_links,
)
from repro.routing.failures import single_link_failures

pytestmark = pytest.mark.slow  # full probabilistic search + failure sweep


@pytest.fixture(scope="module")
def probabilistic_run():
    from repro.config import (
        OptimizerConfig,
        SamplingParams,
        SearchParams,
        WeightParams,
    )
    from repro.core.evaluation import DtrEvaluator
    from repro.topology import rand_topology, scale_to_diameter
    from repro.traffic import dtr_traffic, scale_to_utilization

    gen = np.random.default_rng(23)
    network = scale_to_diameter(rand_topology(10, 4.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(10, gen, 1.0), 0.4, "mean"
    )
    config = OptimizerConfig(
        weights=WeightParams(w_max=12),
        search=SearchParams(
            phase1_diversification_interval=3,
            phase1_diversifications=1,
            phase2_diversification_interval=2,
            phase2_diversifications=1,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=2,
            max_iterations=20,
        ),
        sampling=SamplingParams(
            tau=1, min_samples_per_link=2, max_extra_samples=200
        ),
    )
    evaluator = DtrEvaluator(network, traffic, config)
    phase1 = run_phase1(evaluator, np.random.default_rng(1))
    failures = single_link_failures(network)
    probs = length_proportional_probabilities(network, failures)
    weighted = WeightedFailureSet.from_failure_set(failures, probs)
    selection = select_probabilistic_critical_links(
        phase1.estimate, network, failures, probs, 6
    )
    critical = weighted.restricted_to_arcs(selection.critical_arcs)
    constraints = RobustConstraints(
        lam_star=phase1.best_cost.lam,
        phi_star=phase1.best_cost.phi,
        chi=config.sampling.chi,
    )
    result = probabilistic_robust_optimize(
        evaluator, critical, phase1.pool, constraints,
        np.random.default_rng(2),
    )
    return evaluator, phase1, critical, constraints, result


class TestProbabilisticOptimize:
    def test_constraints_hold(self, probabilistic_run):
        _, _, _, constraints, result = probabilistic_run
        assert constraints.satisfied_by(result.normal_cost)

    def test_beats_or_matches_regular(self, probabilistic_run):
        evaluator, phase1, critical, _, result = probabilistic_run
        regular = expected_failure_cost(
            evaluator, phase1.best_setting, critical
        )
        assert result.expected_kfail <= regular

    def test_reported_kfail_is_consistent(self, probabilistic_run):
        evaluator, _, critical, _, result = probabilistic_run
        recomputed = expected_failure_cost(
            evaluator, result.best_setting, critical
        )
        assert result.expected_kfail.lam == pytest.approx(
            recomputed.lam, abs=1e-9
        )
        assert result.expected_kfail.phi == pytest.approx(
            recomputed.phi, rel=1e-9
        )

    def test_requires_starts(self, probabilistic_run):
        evaluator, _, critical, constraints, _ = probabilistic_run
        with pytest.raises(ValueError, match="starting"):
            probabilistic_robust_optimize(
                evaluator, critical, (), constraints,
                np.random.default_rng(0),
            )
