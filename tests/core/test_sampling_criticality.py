"""Tests for sample collection, criticality estimation, and selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SamplingParams
from repro.core.criticality import (
    CriticalityEstimate,
    descending_ranking,
    estimate_criticality,
)
from repro.core.lexicographic import CostPair
from repro.core.sampling import (
    AcceptabilityRule,
    CostSampleStore,
    left_tail_mean,
)
from repro.core.selection import select_critical_links, tail_error


class TestAcceptabilityRule:
    def test_within_slack(self):
        rule = AcceptabilityRule(z=0.5, chi=0.2, b1=100.0)
        best = CostPair(100.0, 50.0)
        assert rule.is_acceptable(CostPair(150.0, 60.0), best)

    def test_lambda_slack_boundary(self):
        rule = AcceptabilityRule(z=0.5, chi=0.2, b1=100.0)
        best = CostPair(100.0, 50.0)
        assert rule.is_acceptable(CostPair(150.0, 50.0), best)
        assert not rule.is_acceptable(CostPair(151.0, 50.0), best)

    def test_phi_slack_boundary(self):
        rule = AcceptabilityRule(z=0.5, chi=0.2, b1=100.0)
        best = CostPair(0.0, 100.0)
        assert rule.is_acceptable(CostPair(0.0, 120.0), best)
        assert not rule.is_acceptable(CostPair(0.0, 121.0), best)


class TestCostSampleStore:
    def test_add_and_count(self):
        store = CostSampleStore(4)
        store.add(2, 10.0, 1.0)
        store.add(2, 20.0, 2.0)
        assert store.count(2) == 2
        assert store.total_samples == 2
        assert store.counts().tolist() == [0, 0, 2, 0]

    def test_samples_retrieval(self):
        store = CostSampleStore(2)
        store.add(0, 5.0, 0.5)
        assert store.lam_samples(0).tolist() == [5.0]
        assert store.phi_samples(0).tolist() == [0.5]

    def test_least_sampled(self):
        store = CostSampleStore(3)
        store.add(0, 1.0, 1.0)
        store.add(0, 1.0, 1.0)
        store.add(2, 1.0, 1.0)
        assert store.least_sampled_arcs(1) == [1]
        assert store.least_sampled_arcs(2) == [1, 2]

    def test_has_min_samples(self):
        store = CostSampleStore(2)
        store.add(0, 1.0, 1.0)
        assert not store.has_min_samples(1)
        store.add(1, 1.0, 1.0)
        assert store.has_min_samples(1)


class TestLeftTailMean:
    def test_small_sample_uses_minimum(self):
        samples = np.asarray([5.0, 1.0, 3.0])
        assert left_tail_mean(samples, 0.1) == 1.0

    def test_ten_percent_tail(self):
        samples = np.arange(100, dtype=float)
        # smallest 10 values: 0..9, mean 4.5
        assert left_tail_mean(samples, 0.1) == pytest.approx(4.5)

    def test_empty(self):
        assert left_tail_mean(np.asarray([]), 0.1) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0, 1e6), min_size=1, max_size=50),
        st.sampled_from([0.1, 0.25, 0.5]),
    )
    def test_tail_below_mean(self, values, fraction):
        samples = np.asarray(values)
        assert (
            left_tail_mean(samples, fraction) <= samples.mean() + 1e-6
        )


class TestCriticalityEstimate:
    def test_wide_distribution_more_critical(self):
        params = SamplingParams()
        store = CostSampleStore(2)
        # arc 0: narrow distribution; arc 1: wide
        for v in [10.0, 10.5, 11.0, 10.2, 10.8] * 4:
            store.add(0, v, v)
        for v in [1.0, 50.0, 100.0, 2.0, 80.0] * 4:
            store.add(1, v, v)
        estimate = estimate_criticality(store, params)
        assert estimate.rho_lam[1] > estimate.rho_lam[0]
        assert estimate.rho_phi[1] > estimate.rho_phi[0]

    def test_unsampled_arc_zero(self):
        store = CostSampleStore(3)
        store.add(0, 5.0, 5.0)
        estimate = estimate_criticality(store, SamplingParams())
        assert estimate.rho_lam[1] == 0.0
        assert estimate.tail_lam[2] == 0.0

    def test_normalization_zero_safe(self):
        store = CostSampleStore(2)
        store.add(0, 0.0, 0.0)
        store.add(1, 0.0, 0.0)
        estimate = estimate_criticality(store, SamplingParams())
        assert np.all(estimate.normalized_lam == 0.0)

    def test_rankings_deterministic_on_ties(self):
        values = np.zeros(5)
        ranking = descending_ranking(values)
        assert ranking.tolist() == [0, 1, 2, 3, 4]

    def test_ranking_descending(self, rng):
        values = rng.uniform(0, 1, 10)
        ranking = descending_ranking(values)
        assert np.all(np.diff(values[ranking]) <= 0)


class TestSelection:
    def _estimate(self, rho_lam, rho_phi):
        rho_lam = np.asarray(rho_lam, dtype=float)
        rho_phi = np.asarray(rho_phi, dtype=float)
        return CriticalityEstimate(
            rho_lam=rho_lam,
            rho_phi=rho_phi,
            tail_lam=np.ones_like(rho_lam),
            tail_phi=np.ones_like(rho_phi),
            sample_counts=np.full(rho_lam.shape, 10),
        )

    def test_tail_error(self):
        err = tail_error(np.asarray([3.0, 2.0, 1.0]))
        assert err.tolist() == [6.0, 3.0, 1.0, 0.0]

    def test_picks_top_of_both_lists(self):
        estimate = self._estimate(
            rho_lam=[10.0, 0.0, 0.0, 0.0],
            rho_phi=[0.0, 0.0, 0.0, 10.0],
        )
        selection = select_critical_links(estimate, 2)
        assert set(selection.critical_arcs) == {0, 3}

    def test_respects_target_size(self, rng):
        estimate = self._estimate(
            rho_lam=rng.uniform(0, 1, 20),
            rho_phi=rng.uniform(0, 1, 20),
        )
        for target in (1, 5, 10, 20):
            selection = select_critical_links(estimate, target)
            assert len(selection) <= target
            assert len(selection) >= 1

    def test_full_target_keeps_all(self, rng):
        estimate = self._estimate(
            rho_lam=rng.uniform(0, 1, 8),
            rho_phi=rng.uniform(0, 1, 8),
        )
        selection = select_critical_links(estimate, 8)
        assert len(selection) == 8

    def test_residual_errors_decrease_with_size(self, rng):
        estimate = self._estimate(
            rho_lam=rng.uniform(0, 1, 30),
            rho_phi=rng.uniform(0, 1, 30),
        )
        res_small = select_critical_links(estimate, 3)
        res_large = select_critical_links(estimate, 20)
        small_total = (
            res_small.residual_error_lam + res_small.residual_error_phi
        )
        large_total = (
            res_large.residual_error_lam + res_large.residual_error_phi
        )
        assert large_total <= small_total + 1e-12

    def test_invalid_target(self, rng):
        estimate = self._estimate([1.0], [1.0])
        with pytest.raises(ValueError):
            select_critical_links(estimate, 0)

    def test_most_critical_arcs_always_kept(self, rng):
        rho_lam = rng.uniform(0, 0.1, 20)
        rho_phi = rng.uniform(0, 0.1, 20)
        rho_lam[7] = 5.0  # dominant delay-critical arc
        rho_phi[13] = 5.0  # dominant tput-critical arc
        estimate = self._estimate(rho_lam, rho_phi)
        selection = select_critical_links(estimate, 4)
        assert 7 in selection.critical_arcs
        assert 13 in selection.critical_arcs
