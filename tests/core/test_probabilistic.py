"""Tests for the probabilistic failure model extension."""

import numpy as np
import pytest

from repro.core.lexicographic import CostPair
from repro.core.probabilistic import (
    WeightedFailureSet,
    expected_failure_cost,
    length_proportional_probabilities,
    select_probabilistic_critical_links,
    uniform_probabilities,
    weighted_criticality,
)
from repro.core.criticality import CriticalityEstimate
from repro.routing.failures import single_link_failures


class TestWeightedFailureSet:
    def test_normalization(self, square_network):
        failures = single_link_failures(square_network)
        wfs = WeightedFailureSet.from_failure_set(
            failures, np.asarray([1.0, 2.0, 3.0, 4.0, 10.0])
        )
        assert sum(wfs.probabilities) == pytest.approx(1.0)
        assert wfs.probabilities[-1] == pytest.approx(0.5)

    def test_length_mismatch(self, square_network):
        failures = single_link_failures(square_network)
        with pytest.raises(ValueError, match="one probability"):
            WeightedFailureSet.from_failure_set(failures, np.ones(2))

    def test_negative_probability_rejected(self, square_network):
        failures = single_link_failures(square_network)
        probs = np.ones(len(failures))
        probs[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            WeightedFailureSet.from_failure_set(failures, probs)

    def test_restriction_renormalizes(self, square_network):
        failures = single_link_failures(square_network)
        wfs = WeightedFailureSet.from_failure_set(
            failures, uniform_probabilities(failures)
        )
        arc = square_network.arc_id(0, 1)
        restricted = wfs.restricted_to_arcs([arc])
        assert len(restricted) == 1
        assert restricted.probabilities[0] == pytest.approx(1.0)

    def test_restriction_to_nothing_rejected(self, square_network):
        failures = single_link_failures(square_network)
        wfs = WeightedFailureSet.from_failure_set(
            failures, uniform_probabilities(failures)
        )
        with pytest.raises(ValueError, match="every scenario"):
            wfs.restricted_to_arcs([])


class TestProbabilityModels:
    def test_uniform(self, square_network):
        failures = single_link_failures(square_network)
        probs = uniform_probabilities(failures)
        assert np.allclose(probs, 1.0 / len(failures))

    def test_length_proportional_favors_long_links(self, square_network):
        failures = single_link_failures(square_network)
        probs = length_proportional_probabilities(square_network, failures)
        assert probs.sum() == pytest.approx(1.0)
        # the diagonal (0-2) is the longest link in the fixture
        diag_arc = square_network.arc_id(0, 2)
        diag_index = next(
            i
            for i, s in enumerate(failures)
            if diag_arc in s.failed_arcs
        )
        assert probs[diag_index] == probs.max()


class TestExpectedCost:
    def test_uniform_matches_mean(self, small_evaluator, random_setting):
        failures = single_link_failures(small_evaluator.network)
        wfs = WeightedFailureSet.from_failure_set(
            failures, uniform_probabilities(failures)
        )
        expected = expected_failure_cost(
            small_evaluator, random_setting, wfs
        )
        total = small_evaluator.evaluate_failures(
            random_setting, failures
        ).total_cost
        assert expected.lam == pytest.approx(total.lam / len(failures))
        assert expected.phi == pytest.approx(total.phi / len(failures))

    def test_point_mass_matches_single_scenario(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        probs = np.zeros(len(failures))
        probs[3] = 1.0
        wfs = WeightedFailureSet.from_failure_set(failures, probs)
        expected = expected_failure_cost(
            small_evaluator, random_setting, wfs
        )
        single = small_evaluator.evaluate(random_setting, failures[3])
        assert expected == CostPair(single.cost.lam, single.cost.phi)


class TestWeightedCriticality:
    def _estimate(self, n):
        return CriticalityEstimate(
            rho_lam=np.ones(n),
            rho_phi=np.ones(n),
            tail_lam=np.ones(n),
            tail_phi=np.ones(n),
            sample_counts=np.full(n, 5),
        )

    def test_uniform_weights_are_identity(self, square_network):
        failures = single_link_failures(square_network)
        estimate = self._estimate(square_network.num_arcs)
        weighted = weighted_criticality(
            estimate,
            square_network,
            failures,
            uniform_probabilities(failures),
        )
        np.testing.assert_allclose(weighted.rho_lam, estimate.rho_lam)

    def test_selection_prefers_likely_failures(self, square_network):
        failures = single_link_failures(square_network)
        estimate = self._estimate(square_network.num_arcs)
        probs = uniform_probabilities(failures)
        # make one link 10x as likely to fail
        probs[2] *= 10
        probs /= probs.sum()
        selection = select_probabilistic_critical_links(
            estimate, square_network, failures, probs, 2
        )
        assert set(failures[2].failed_arcs) & set(selection.critical_arcs)
