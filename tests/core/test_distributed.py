"""Tests for the multi-host distributed sweep executor.

The contract is the repo-wide one: ``executor="hosts"`` is an execution
knob, so every distributed sweep — across any host count, any chunking,
any streamed return order, and any injected host death — must produce
results *bit-identical* to the serial evaluator.  Parity assertions use
exact equality throughout.
"""

import socket
import threading

import numpy as np
import pytest

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.checkpoint import execution_fingerprint
from repro.core.distributed import (
    DistributedDtrEvaluator,
    HostWorker,
)
from repro.core.evaluation import DtrEvaluator
from repro.core.faults import FaultPlan, StageFault, TaskDelay, WorkerKill
from repro.core.parallel import make_evaluator
from repro.core.weights import WeightSetting
from repro.routing.backend import parse_hosts, validate_hosts
from repro.routing.failures import single_link_failures
from repro.scenarios import (
    GaussianSurge,
    GravityRescale,
    cross,
    gaussian_surges,
    k_link_failures,
    srlg_failures,
)
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture(scope="module")
def dist_instance():
    """A 10-node RandTopo with scaled traffic (deterministic)."""
    gen = np.random.default_rng(7)
    network = scale_to_diameter(rand_topology(10, 4.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(10, gen, 1.0), 0.4, "mean"
    )
    return network, traffic


@pytest.fixture(scope="module")
def dist_setting(dist_instance):
    network, _ = dist_instance
    return WeightSetting.random(
        network.num_arcs,
        OptimizerConfig().weights,
        np.random.default_rng(23),
    )


@pytest.fixture(scope="module")
def mixed_scenarios(dist_instance):
    """Failures, surges and crossed variants in one set."""
    network, _ = dist_instance
    return (
        srlg_failures(network, num_groups=3, group_size=2, seed=1)
        + k_link_failures(network, k=2, max_scenarios=3, seed=1)
        + gaussian_surges(count=2, seed=1)
        + cross(
            srlg_failures(network, num_groups=1, group_size=2, seed=1),
            [GaussianSurge(seed=8), GravityRescale(1.3)],
        )
    )


@pytest.fixture(scope="module")
def serial_reference(dist_instance, dist_setting, mixed_scenarios):
    network, traffic = dist_instance
    serial = DtrEvaluator(network, traffic, OptimizerConfig())
    return serial.evaluate_scenarios(dist_setting, mixed_scenarios)


def _config(**execution_kwargs) -> OptimizerConfig:
    return OptimizerConfig().replace(
        execution=ExecutionParams(executor="hosts", **execution_kwargs)
    )


def _assert_bit_identical(reference, candidate):
    assert len(reference) == len(candidate)
    assert reference.total_cost.lam == candidate.total_cost.lam
    assert reference.total_cost.phi == candidate.total_cost.phi
    for ref, got in zip(reference.evaluations, candidate.evaluations):
        assert ref.scenario == got.scenario
        assert ref.cost.lam == got.cost.lam
        assert ref.cost.phi == got.cost.phi
        assert ref.sla.violations == got.sla.violations
        assert np.array_equal(ref.loads_delay, got.loads_delay)
        assert np.array_equal(ref.loads_tput, got.loads_tput)


def _assert_pool_released(evaluator):
    """After close(): no open sockets, no live local host processes."""
    pool = evaluator._executor.pool
    if pool is None:
        return
    for client in pool.clients:
        assert client.closed, client.describe()
        assert client.process is None


class TestHostSpecParsing:
    def test_local_spec(self):
        assert parse_hosts("local:3") == 3

    def test_endpoint_spec(self):
        assert parse_hosts("alpha:7777,beta:7778") == (
            ("alpha", 7777),
            ("beta", 7778),
        )

    @pytest.mark.parametrize(
        "spec",
        ["", "local:0", "local:x", "alpha", "alpha:0", "alpha:70000", ","],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_hosts(spec)

    def test_hosts_executor_requires_spec(self):
        with pytest.raises(ValueError, match="hosts"):
            validate_hosts(None, "hosts")

    def test_other_executors_reject_spec(self):
        with pytest.raises(ValueError, match="hosts"):
            validate_hosts("local:2", "process")

    def test_execution_params_validate(self):
        ExecutionParams(executor="hosts", hosts="local:2")
        with pytest.raises(ValueError):
            ExecutionParams(executor="hosts")
        with pytest.raises(ValueError):
            ExecutionParams(hosts="local:2")

    def test_fingerprint_ignores_hosts(self):
        # Resuming a cluster run on different (or no) hosts must not be
        # refused: hosts is execution-only, like every resilience knob.
        base = _config(hosts="local:2")
        other = _config(hosts="alpha:7777,beta:7778")
        assert execution_fingerprint(
            base.execution
        ) == execution_fingerprint(other.execution)


class TestTicketPlanning:
    def _executor(self, hosts):
        from repro.core.distributed import DistributedSweepExecutor
        from repro.core.resilience import ResilienceCounters
        from repro.core.resilience import TransportCounters

        return DistributedSweepExecutor(
            hosts, ResilienceCounters(), TransportCounters()
        )

    def test_contiguous_cover(self):
        tickets = self._executor("local:3").plan_tickets(25, 10, None)
        spans = [(lo, hi) for _, lo, hi in tickets]
        assert spans[0][0] == 0 and spans[-1][1] == 25
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            assert prev_hi == lo
        owners = [owner for owner, _, _ in tickets]
        assert sorted(set(owners)) == [0, 1, 2]

    def test_chunk_size_respected(self):
        tickets = self._executor("local:2").plan_tickets(20, 10, 3)
        assert all(hi - lo <= 3 for _, lo, hi in tickets)

    def test_budget_caps_tickets(self):
        # Huge chunk request on a big network: the sweep-state budget
        # bounds every ticket like it bounds shm batch groups.
        from repro.routing.sweep import group_scenario_budget

        budget = group_scenario_budget(400)
        tickets = self._executor("local:1").plan_tickets(
            10 * budget, 400, 10 * budget
        )
        assert all(hi - lo <= budget for _, lo, hi in tickets)


@pytest.mark.parallel
class TestLocalHostParity:
    def test_sweep_matches_serial_bit_for_bit(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        with DistributedDtrEvaluator(
            network, traffic, _config(hosts="local:2")
        ) as dist:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
            stats = dist.transport_stats
        _assert_bit_identical(serial_reference, candidate)
        assert stats.publishes > 0 and stats.payload_bytes > 0
        assert stats.tasks > 0 and stats.result_bytes > 0

    def test_invariant_to_host_count_and_chunking(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        for execution in (
            _config(hosts="local:3"),
            _config(hosts="local:2", chunk_size=1),
        ):
            with DistributedDtrEvaluator(
                network, traffic, execution
            ) as dist:
                candidate = dist.evaluate_scenarios(
                    dist_setting, mixed_scenarios
                )
            _assert_bit_identical(serial_reference, candidate)

    def test_costs_only_streaming(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        with DistributedDtrEvaluator(
            network, traffic, _config(hosts="local:2")
        ) as dist:
            costs = dist.evaluate_scenario_costs(
                dist_setting, mixed_scenarios
            )
            # Streamed returns are scalars only: no routings, no loads.
            for outcome in costs.evaluations:
                assert outcome.loads_delay is None
            assert costs.total_cost.lam == serial_reference.total_cost.lam
            assert costs.total_cost.phi == serial_reference.total_cost.phi
            # A repeat sweep is a memo hit: nothing new is dispatched.
            tasks_before = dist.transport_stats.tasks
            again = dist.evaluate_scenario_costs(
                dist_setting, mixed_scenarios
            )
            assert again is costs
            assert dist.transport_stats.tasks == tasks_before

    def test_publish_once_epochs(
        self, dist_instance, dist_setting, mixed_scenarios
    ):
        network, traffic = dist_instance
        other = WeightSetting.random(
            network.num_arcs,
            OptimizerConfig().weights,
            np.random.default_rng(99),
        )
        with DistributedDtrEvaluator(
            network, traffic, _config(hosts="local:2")
        ) as dist:
            dist.evaluate_scenarios(dist_setting, mixed_scenarios)
            first = dist.transport_stats
            dist.evaluate_scenarios(other, mixed_scenarios)
            second = dist.transport_stats
        # The second sweep ships only the new setting's weight vectors
        # (one publish per host), never the instance or scenario set.
        delta = second.payload_bytes - first.payload_bytes
        assert delta > 0
        assert delta < first.payload_bytes / 4
        # Tasks stay ticket-sized: tens of bytes each, not payloads.
        assert second.bytes_per_task < 200

    def test_make_evaluator_dispatch(self, dist_instance):
        network, traffic = dist_instance
        evaluator = make_evaluator(
            network, traffic, _config(hosts="local:2")
        )
        try:
            assert isinstance(evaluator, DistributedDtrEvaluator)
            assert evaluator.n_hosts == 2
        finally:
            evaluator.close()

    def test_single_scenario_stays_serial(
        self, dist_instance, dist_setting
    ):
        network, traffic = dist_instance
        failures = single_link_failures(network)
        with DistributedDtrEvaluator(
            network, traffic, _config(hosts="local:2")
        ) as dist:
            one = dist.evaluate_scenarios(dist_setting, failures[:1])
            assert len(one) == 1
            # No tasks dispatched, no pool built for a 1-scenario sweep.
            assert dist.transport_stats.tasks == 0
            assert dist._executor.pool is None

    def test_close_releases_everything(
        self, dist_instance, dist_setting, mixed_scenarios
    ):
        network, traffic = dist_instance
        dist = DistributedDtrEvaluator(
            network, traffic, _config(hosts="local:2")
        )
        dist.evaluate_scenarios(dist_setting, mixed_scenarios)
        dist.close()
        _assert_pool_released(dist)
        dist.close()  # idempotent


@pytest.mark.parallel
class TestTcpHosts:
    def test_serve_host_parity(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        worker = HostWorker("127.0.0.1", 0, once=True)
        server = threading.Thread(
            target=worker.serve_forever, daemon=True
        )
        server.start()
        with DistributedDtrEvaluator(
            network,
            traffic,
            _config(hosts=f"127.0.0.1:{worker.port}"),
        ) as dist:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
        _assert_bit_identical(serial_reference, candidate)
        server.join(timeout=10)
        assert not server.is_alive()

    def test_unreachable_host_degrades_to_serial(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        # A port nothing listens on: every ticket quarantines to the
        # parent's serial path, and the sweep still completes exactly.
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        dead_port = sink.getsockname()[1]
        sink.close()
        with DistributedDtrEvaluator(
            network,
            traffic,
            _config(hosts=f"127.0.0.1:{dead_port}", max_retries=1),
        ) as dist:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
            stats = dist.resilience_stats
        _assert_bit_identical(serial_reference, candidate)
        assert stats.quarantined_tasks > 0
        assert stats.host_failures > 0
        assert stats.host_respawns == 0


@pytest.mark.parallel
class TestHostChaos:
    def test_host_killed_mid_sweep_is_bit_identical(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        plan = FaultPlan(faults=(WorkerKill(task=1),))
        dist = DistributedDtrEvaluator(
            network,
            traffic,
            _config(hosts="local:2", fault_plan=plan),
        )
        try:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
            stats = dist.resilience_stats
        finally:
            dist.close()
        _assert_bit_identical(serial_reference, candidate)
        assert stats.host_failures == 1
        assert stats.host_respawns == 1
        assert stats.worker_failures >= 1
        _assert_pool_released(dist)

    def test_delayed_host_keeps_streaming_order(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        # Stall the first shard's first ticket: results from the other
        # host stream back earlier, yet reassembly is in scenario order.
        plan = FaultPlan(faults=(TaskDelay(task=0, seconds=0.4),))
        with DistributedDtrEvaluator(
            network,
            traffic,
            _config(hosts="local:2", fault_plan=plan),
        ) as dist:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
            stats = dist.resilience_stats
        _assert_bit_identical(serial_reference, candidate)
        assert stats.host_failures == 0

    def test_poison_task_quarantines_to_serial(
        self, dist_instance, dist_setting, mixed_scenarios, serial_reference
    ):
        network, traffic = dist_instance
        plan = FaultPlan(
            faults=(StageFault(stage="task", task=2, attempts=None),)
        )
        with DistributedDtrEvaluator(
            network,
            traffic,
            _config(hosts="local:2", fault_plan=plan, max_retries=1),
        ) as dist:
            candidate = dist.evaluate_scenarios(
                dist_setting, mixed_scenarios
            )
            stats = dist.resilience_stats
        _assert_bit_identical(serial_reference, candidate)
        assert stats.quarantined_tasks == 1
        assert stats.task_failures >= 1
        # Poison is a task error, not a host death.
        assert stats.host_failures == 0
