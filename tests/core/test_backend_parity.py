"""``routing_backend`` is execution-only: evaluator and search parity.

The backend knob may change how fast the cost oracle runs, never what it
computes.  These tests pin evaluator-level cost equality across the
three backends and the invariance of seeded Phase 1 / Phase 2 searches
to the knob (the bench gate in ``benchmarks/bench_scale.py`` enforces
the same properties at Rocketfuel scale).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.phase1 import run_phase1
from repro.core.phase2 import RobustConstraints, run_phase2
from repro.routing.failures import single_link_failures


def backend_config(config: OptimizerConfig, backend: str) -> OptimizerConfig:
    return config.replace(
        execution=dataclasses.replace(
            config.execution, routing_backend=backend
        )
    )


class TestExecutionParams:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown routing backend"):
            ExecutionParams(routing_backend="cuda")

    def test_numba_is_recognized_but_gated_on_import(self):
        # "numba" is a valid name; whether construction succeeds depends
        # on the soft dependency being importable (the full gating
        # matrix is pinned by tests/routing/test_numba_kernels.py).
        from repro.routing.backend import numba_available

        if numba_available():
            params = ExecutionParams(routing_backend="numba")
            assert params.routing_backend == "numba"
        else:
            with pytest.raises(ValueError, match="pip install numba"):
                ExecutionParams(routing_backend="numba")

    @pytest.mark.parametrize("backend", ["auto", "python", "vector"])
    def test_accepts_valid_backends(self, backend):
        assert ExecutionParams(routing_backend=backend).routing_backend == (
            backend
        )

    def test_default_is_auto(self):
        assert ExecutionParams().routing_backend == "auto"


class TestEvaluatorWiring:
    def test_engine_and_router_get_the_backend(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        config = backend_config(tiny_config, "vector")
        evaluator = DtrEvaluator(network, traffic, config)
        assert evaluator.engine.backend == "vector"
        setting_rng = np.random.default_rng(0)
        from repro.core.weights import WeightSetting

        setting = WeightSetting.random(
            network.num_arcs, config.weights, setting_rng
        )
        evaluator.evaluate_normal(setting)
        for router in evaluator._routers.values():
            assert router._backend == "vector"


class TestEvaluatorParity:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_sweep_costs_identical(
        self, small_instance, tiny_config, incremental
    ):
        network, traffic = small_instance
        from repro.core.weights import WeightSetting

        rng = np.random.default_rng(13)
        setting = WeightSetting.random(
            network.num_arcs, tiny_config.weights, rng
        )
        failures = single_link_failures(network)
        outcomes = {}
        for backend in ("python", "vector", "auto"):
            config = backend_config(tiny_config, backend).replace(
                execution=ExecutionParams(
                    incremental_routing=incremental,
                    routing_backend=backend,
                )
            )
            evaluator = DtrEvaluator(network, traffic, config)
            normal = evaluator.evaluate_normal(setting)
            sweep = evaluator.evaluate_failures(
                setting, failures, reuse=normal
            )
            outcomes[backend] = (normal, sweep)
        ref_normal, ref_sweep = outcomes["python"]
        for backend in ("vector", "auto"):
            normal, sweep = outcomes[backend]
            assert normal.cost == ref_normal.cost, backend
            np.testing.assert_array_equal(
                normal.pair_delays, ref_normal.pair_delays
            )
            assert len(sweep) == len(ref_sweep)
            for got, expected in zip(
                sweep.evaluations, ref_sweep.evaluations
            ):
                assert got.cost == expected.cost, backend
                np.testing.assert_array_equal(
                    got.loads_delay, expected.loads_delay
                )
                np.testing.assert_array_equal(
                    got.loads_tput, expected.loads_tput
                )


@pytest.mark.slow
class TestSearchInvariance:
    """Seeded Phase 1 / Phase 2 results do not depend on the backend."""

    def _phase1(self, small_instance, tiny_config, backend):
        network, traffic = small_instance
        config = backend_config(tiny_config, backend)
        evaluator = DtrEvaluator(network, traffic, config)
        result = run_phase1(evaluator, np.random.default_rng(21))
        return result, evaluator

    def test_phase1_and_phase2_invariant(self, small_instance, tiny_config):
        results = {}
        for backend in ("python", "vector"):
            p1, evaluator = self._phase1(
                small_instance, tiny_config, backend
            )
            constraints = RobustConstraints(
                p1.best_cost.lam,
                p1.best_cost.phi,
                tiny_config.sampling.chi,
            )
            failures = single_link_failures(evaluator.network)
            p2 = run_phase2(
                evaluator,
                failures,
                p1.pool,
                constraints,
                np.random.default_rng(22),
            )
            results[backend] = (p1, p2)
        p1_py, p2_py = results["python"]
        p1_vec, p2_vec = results["vector"]
        assert p1_py.best_cost == p1_vec.best_cost
        assert p1_py.best_setting == p1_vec.best_setting
        assert (
            p1_py.selection.critical_arcs == p1_vec.selection.critical_arcs
        )
        assert p2_py.best_kfail == p2_vec.best_kfail
        assert p2_py.best_setting == p2_vec.best_setting
        assert p2_py.stats.evaluations == p2_vec.stats.evaluations
