"""Evaluator integration of the scenario-axis batch sweep engine.

Pins the PR's acceptance criteria:

* batched sweeps are bit-identical to the serial per-scenario path on
  integer-weight instances, randomized across every scenario family
  (srlg / multi2 / regional / node / surge / cross);
* the ``sweep_batching`` knob defaults on under ``auto``, can be
  disabled, requires incremental routing, and validates its values;
* parallel results (process + shared memory, threads) are invariant to
  ``n_jobs`` and ``chunk_size`` and bit-identical to serial;
* the shared-memory publication round-trips payloads zero-copy.
"""

import numpy as np
import pytest

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import (
    CachingDtrEvaluator,
    ParallelDtrEvaluator,
    SharedSweepState,
)
from repro.core.weights import WeightSetting
from repro.routing.backend import (
    SWEEP_BATCH_MIN_SCENARIOS,
    resolve_sweep_batching,
    validate_sweep_batching,
)
from repro.routing.failures import single_link_failures
from repro.scenarios import (
    GaussianSurge,
    GravityRescale,
    cross,
    gaussian_surges,
    k_link_failures,
    node_failures,
    regional_failures,
    srlg_failures,
)


def _mixed_scenarios(network, seed=0):
    """A set spanning every family shape (multi-arc + variants)."""
    return (
        srlg_failures(network, num_groups=3, group_size=2, seed=seed)
        + k_link_failures(network, k=2, max_scenarios=3, seed=seed)
        + regional_failures(network, num_regions=2, seed=seed)
        + node_failures(network, nodes=[0, 3])
        + gaussian_surges(count=2, seed=seed)
        + cross(
            srlg_failures(network, num_groups=2, group_size=2, seed=seed),
            [GaussianSurge(seed=seed + 7), GravityRescale(1.3)],
        )
    )


def assert_sweeps_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a.evaluations, b.evaluations):
        assert x.scenario == y.scenario
        assert x.kind == y.kind
        assert x.variant == y.variant
        assert x.cost.lam == y.cost.lam
        assert x.cost.phi == y.cost.phi
        assert x.sla.violations == y.sla.violations
        assert x.sla.disconnected == y.sla.disconnected
        assert np.array_equal(x.loads_delay, y.loads_delay)
        assert np.array_equal(x.loads_tput, y.loads_tput)
        assert np.array_equal(x.arc_delay, y.arc_delay)
        assert np.array_equal(x.pair_delays, y.pair_delays, equal_nan=True)
        assert np.array_equal(x.utilization, y.utilization)


def _evaluator(network, traffic, config, mode, **kwargs):
    execution = ExecutionParams(sweep_batching=mode, **kwargs)
    return DtrEvaluator(
        network, traffic, config.replace(execution=execution)
    )


class TestKnob:
    def test_validation(self):
        assert validate_sweep_batching("auto") == "auto"
        with pytest.raises(ValueError):
            validate_sweep_batching("maybe")
        with pytest.raises(ValueError):
            ExecutionParams(sweep_batching="sometimes")

    def test_resolution(self):
        assert not resolve_sweep_batching("off", 100)
        assert resolve_sweep_batching("on", 1)
        assert not resolve_sweep_batching("on", 0)
        assert resolve_sweep_batching("auto", SWEEP_BATCH_MIN_SCENARIOS)
        assert not resolve_sweep_batching(
            "auto", SWEEP_BATCH_MIN_SCENARIOS - 1
        )

    def test_default_resolves_on_and_requires_incremental(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        default = DtrEvaluator(network, traffic, tiny_config)
        assert default._use_sweep_batching(10)
        off = _evaluator(network, traffic, tiny_config, "off")
        assert not off._use_sweep_batching(10)
        # auto quietly falls back without the routers it rides on ...
        no_inc = _evaluator(
            network, traffic, tiny_config, "auto",
            incremental_routing=False,
        )
        assert not no_inc._use_sweep_batching(10)
        # ... but forcing it on without them is a config error
        with pytest.raises(ValueError):
            ExecutionParams(
                sweep_batching="on", incremental_routing=False
            )
        # a forced python backend keeps its A/B isolation: auto falls
        # back to the per-scenario path, forcing both is an error
        py = _evaluator(
            network, traffic, tiny_config, "auto",
            routing_backend="python",
        )
        assert not py._use_sweep_batching(10)
        with pytest.raises(ValueError):
            ExecutionParams(
                sweep_batching="on", routing_backend="python"
            )


class TestSerialParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_batched_equals_per_scenario_on_all_families(
        self, small_instance, tiny_config, seed
    ):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=seed)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(seed + 100),
        )
        legacy = _evaluator(network, traffic, tiny_config, "off")
        batched = _evaluator(network, traffic, tiny_config, "on")
        reference = legacy.evaluate_scenarios(setting, scenarios)
        candidate = batched.evaluate_scenarios(setting, scenarios)
        assert_sweeps_identical(reference, candidate)
        assert legacy.num_evaluations == batched.num_evaluations

    def test_repeat_and_second_setting_stay_identical(
        self, small_instance, tiny_config
    ):
        """Warm memos/routers (second sweep, then a one-move-away
        setting) replay identical bits through the batch engine."""
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=5)
        rng = np.random.default_rng(55)
        setting = WeightSetting.random(
            network.num_arcs, tiny_config.weights, rng
        )
        moved = setting.copy()
        moved.delay[3] = max(1, int(moved.delay[3]) - 1)
        legacy = _evaluator(network, traffic, tiny_config, "off")
        batched = _evaluator(network, traffic, tiny_config, "on")
        for s in (setting, setting, moved):
            assert_sweeps_identical(
                legacy.evaluate_scenarios(s, scenarios),
                batched.evaluate_scenarios(s, scenarios),
            )

    def test_caching_evaluator_batched_parity_and_cache_use(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        failures = single_link_failures(network)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(77),
        )
        serial = DtrEvaluator(network, traffic, tiny_config)
        reference = serial.evaluate_failures(setting, failures)
        caching = CachingDtrEvaluator(network, traffic, tiny_config)
        first = caching.evaluate_failures(setting, failures)
        assert_sweeps_identical(reference, first)
        before = caching.cache_stats
        second = caching.evaluate_failures(setting, failures)
        assert_sweeps_identical(reference, second)
        # the repeat sweep answers routed scenarios from the cache
        assert caching.cache_stats.hits_exact > before.hits_exact

    def test_duplicate_scenarios_share_one_evaluation(
        self, small_evaluator, random_setting
    ):
        scenarios = list(
            srlg_failures(
                small_evaluator.network, num_groups=2, group_size=2, seed=2
            )
        )
        doubled = scenarios + scenarios
        sweep = small_evaluator.evaluate_scenarios(random_setting, doubled)
        half = len(scenarios)
        for i in range(half):
            assert (
                sweep.evaluations[i].cost == sweep.evaluations[half + i].cost
            )
        assert small_evaluator.num_evaluations == len(doubled) + 1


@pytest.mark.parallel
class TestParallelParity:
    def test_process_shm_matches_serial(self, small_instance, tiny_config):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=1)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(11),
        )
        serial = _evaluator(network, traffic, tiny_config, "off")
        reference = serial.evaluate_scenarios(setting, scenarios)
        config = tiny_config.replace(
            execution=ExecutionParams(n_jobs=2, sweep_batching="auto")
        )
        with ParallelDtrEvaluator(network, traffic, config) as parallel:
            candidate = parallel.evaluate_scenarios(setting, scenarios)
            repeat = parallel.evaluate_scenarios(setting, scenarios)
            assert parallel.num_evaluations == 2 * len(scenarios) + 2
        assert_sweeps_identical(reference, candidate)
        assert_sweeps_identical(reference, repeat)

    def test_thread_executor_matches_serial(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=2)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(12),
        )
        serial = _evaluator(network, traffic, tiny_config, "off")
        reference = serial.evaluate_scenarios(setting, scenarios)
        config = tiny_config.replace(
            execution=ExecutionParams(
                n_jobs=2, executor="thread", sweep_batching="auto"
            )
        )
        with ParallelDtrEvaluator(network, traffic, config) as parallel:
            candidate = parallel.evaluate_scenarios(setting, scenarios)
            assert parallel.num_evaluations == len(scenarios) + 1
        assert_sweeps_identical(reference, candidate)

    @pytest.mark.parametrize(
        "n_jobs,chunk_size", [(2, None), (3, None), (2, 1), (2, 5)]
    )
    def test_invariant_to_jobs_and_chunks(
        self, small_instance, tiny_config, n_jobs, chunk_size
    ):
        network, traffic = small_instance
        scenarios = _mixed_scenarios(network, seed=3)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(13),
        )
        serial = _evaluator(network, traffic, tiny_config, "off")
        reference = serial.evaluate_scenarios(setting, scenarios)
        config = tiny_config.replace(
            execution=ExecutionParams(
                n_jobs=n_jobs,
                chunk_size=chunk_size,
                sweep_batching="auto",
            )
        )
        with ParallelDtrEvaluator(network, traffic, config) as parallel:
            candidate = parallel.evaluate_scenarios(setting, scenarios)
        assert_sweeps_identical(reference, candidate)

    def test_sweep_batching_off_keeps_legacy_transport(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        failures = single_link_failures(network)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(14),
        )
        serial = _evaluator(network, traffic, tiny_config, "off")
        reference = serial.evaluate_failures(setting, failures)
        config = tiny_config.replace(
            execution=ExecutionParams(n_jobs=2, sweep_batching="off")
        )
        with ParallelDtrEvaluator(network, traffic, config) as parallel:
            candidate = parallel.evaluate_failures(setting, failures)
        assert_sweeps_identical(reference, candidate)


class TestSharedSweepState:
    def test_roundtrip_is_zero_copy_and_read_only(self):
        arrays = {
            "a": np.arange(12.0).reshape(3, 4),
            "b": np.arange(7, dtype=np.int64),
        }
        payload = (arrays, "meta", 42)
        state = SharedSweepState(payload)
        try:
            loaded, shm = SharedSweepState.attach(state.name)
            got, tag, num = loaded
            assert tag == "meta" and num == 42
            assert np.array_equal(got["a"], arrays["a"])
            assert np.array_equal(got["b"], arrays["b"])
            # reconstructed arrays are views over the block, not copies
            assert not got["a"].flags.writeable
            assert not got["b"].flags.owndata
            del loaded, got
            shm.close()
        finally:
            state.dispose()
            state.dispose()  # idempotent

    def test_empty_buffer_payload(self):
        state = SharedSweepState(("no arrays here", 1))
        try:
            loaded, shm = SharedSweepState.attach(state.name)
            assert loaded == ("no arrays here", 1)
            shm.close()
        finally:
            state.dispose()
