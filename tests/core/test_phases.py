"""Integration tests for Phase 1, Phase 2 and the full optimizer.

These run the real search loops with the tiny schedule from the
``tiny_config`` fixture — minutes of compute for the whole module.
"""

import numpy as np
import pytest

from repro.core.evaluation import DtrEvaluator
from repro.core.lexicographic import CostPair

pytestmark = pytest.mark.slow  # real search loops over failure sweeps
from repro.core.optimizer import RobustDtrOptimizer
from repro.core.phase1 import run_phase1
from repro.core.phase2 import (
    RobustConstraints,
    bounded_failure_cost,
    run_phase2,
)
from repro.core.weights import WeightSetting
from repro.routing.failures import FailureModel, single_link_failures


@pytest.fixture(scope="module")
def phase1_result():
    """One shared Phase 1 run on the small instance."""
    # rebuilt here because module-scoped fixtures cannot use the
    # function-scoped ones from conftest
    from repro.config import (
        OptimizerConfig,
        SamplingParams,
        SearchParams,
        WeightParams,
    )
    from repro.topology import rand_topology, scale_to_diameter
    from repro.traffic import dtr_traffic, scale_to_utilization

    gen = np.random.default_rng(7)
    network = scale_to_diameter(rand_topology(10, 4.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(10, gen, 1.0), 0.4, "mean"
    )
    config = OptimizerConfig(
        weights=WeightParams(w_min=1, w_max=12, q=0.7),
        search=SearchParams(
            phase1_diversification_interval=3,
            phase1_diversifications=1,
            phase2_diversification_interval=2,
            phase2_diversifications=1,
            improvement_cutoff=0.01,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=3,
            max_iterations=30,
        ),
        sampling=SamplingParams(
            tau=1, min_samples_per_link=3, max_extra_samples=400
        ),
        critical_fraction=0.2,
        keep_acceptable_settings=5,
    )
    evaluator = DtrEvaluator(network, traffic, config)
    result = run_phase1(evaluator, np.random.default_rng(99))
    return evaluator, result


class TestPhase1:
    def test_best_beats_random(self, phase1_result):
        evaluator, result = phase1_result
        random_cost = evaluator.evaluate_normal(
            WeightSetting.random(
                evaluator.network.num_arcs,
                evaluator.config.weights,
                np.random.default_rng(12),
            )
        ).cost
        assert result.best_cost <= random_cost

    def test_pool_settings_satisfy_constraints(self, phase1_result):
        evaluator, result = phase1_result
        chi = evaluator.config.sampling.chi
        for recorded in result.pool:
            cost = evaluator.evaluate_normal(recorded.setting).cost
            assert cost.lam == pytest.approx(result.best_cost.lam, abs=1e-6)
            assert cost.phi <= (1 + chi) * result.best_cost.phi + 1e-9

    def test_pool_contains_best(self, phase1_result):
        evaluator, result = phase1_result
        keys = {r.setting.key() for r in result.pool}
        assert result.best_setting.key() in keys

    def test_samples_collected_for_all_arcs(self, phase1_result):
        _, result = phase1_result
        minimum = 3  # tiny_config.sampling.min_samples_per_link
        assert result.store.counts().min() >= min(
            minimum, result.store.counts().max()
        )

    def test_critical_set_size(self, phase1_result):
        evaluator, result = phase1_result
        target = max(
            1,
            round(
                evaluator.config.critical_fraction
                * evaluator.network.num_arcs
            ),
        )
        assert 1 <= len(result.critical_arcs) <= target

    def test_estimates_cover_all_arcs(self, phase1_result):
        evaluator, result = phase1_result
        assert result.estimate.num_arcs == evaluator.network.num_arcs


class TestPhase2:
    def test_robust_improves_kfail(self, phase1_result):
        evaluator, phase1 = phase1_result
        failures = single_link_failures(
            evaluator.network
        ).restricted_to_arcs(phase1.critical_arcs)
        constraints = RobustConstraints(
            lam_star=phase1.best_cost.lam,
            phi_star=phase1.best_cost.phi,
            chi=evaluator.config.sampling.chi,
        )
        result = run_phase2(
            evaluator,
            failures,
            phase1.pool,
            constraints,
            np.random.default_rng(5),
        )
        # the robust setting must satisfy the constraints ...
        assert constraints.satisfied_by(result.normal_cost)
        # ... and do no worse than the regular setting on K_fail
        regular_kfail = evaluator.evaluate_failures(
            phase1.best_setting, failures
        ).total_cost
        assert result.best_kfail <= regular_kfail

    def test_requires_starts_and_failures(self, phase1_result):
        evaluator, phase1 = phase1_result
        failures = single_link_failures(evaluator.network)
        constraints = RobustConstraints(0.0, 1.0, 0.2)
        with pytest.raises(ValueError, match="starting"):
            run_phase2(
                evaluator, failures, (), constraints, np.random.default_rng(0)
            )


class TestBoundedFailureCost:
    def test_unbounded_matches_full(self, phase1_result):
        evaluator, phase1 = phase1_result
        failures = single_link_failures(evaluator.network)
        full = evaluator.evaluate_failures(
            phase1.best_setting, failures
        ).total_cost
        bounded = bounded_failure_cost(
            evaluator, phase1.best_setting, failures, None
        )
        assert bounded is not None
        assert bounded.lam == pytest.approx(full.lam)
        assert bounded.phi == pytest.approx(full.phi, rel=1e-12)

    def test_prunes_against_tight_bound(self, phase1_result):
        evaluator, phase1 = phase1_result
        failures = single_link_failures(evaluator.network)
        pruned = bounded_failure_cost(
            evaluator,
            phase1.best_setting,
            failures,
            CostPair(-1.0, -1.0),
        )
        assert pruned is None

    def test_never_prunes_with_loose_bound(self, phase1_result):
        evaluator, phase1 = phase1_result
        failures = single_link_failures(evaluator.network)
        loose = CostPair(1e18, 1e18)
        result = bounded_failure_cost(
            evaluator, phase1.best_setting, failures, loose
        )
        assert result is not None


class TestRobustConstraints:
    def test_satisfaction(self):
        constraints = RobustConstraints(lam_star=0.0, phi_star=100.0, chi=0.2)
        assert constraints.satisfied_by(CostPair(0.0, 120.0))
        assert not constraints.satisfied_by(CostPair(0.0, 121.0))
        assert not constraints.satisfied_by(CostPair(1.0, 100.0))


class TestOptimizerFacade:
    def test_end_to_end(self, small_instance, tiny_config):
        network, traffic = small_instance
        optimizer = RobustDtrOptimizer(
            network,
            traffic,
            tiny_config,
            failure_model=FailureModel.LINK,
            rng=np.random.default_rng(3),
        )
        result = optimizer.run()
        assert result.regular_setting.num_arcs == network.num_arcs
        assert result.robust_setting.num_arcs == network.num_arcs
        assert len(result.critical_failures) >= 1
        assert len(result.all_failures) == network.num_links
        assert 0 < result.critical_fraction_used <= 1
        assert result.phase1_seconds > 0
        assert result.phase2_seconds > 0

    def test_full_search_uses_all_failures(
        self, small_instance, tiny_config
    ):
        network, traffic = small_instance
        optimizer = RobustDtrOptimizer(
            network, traffic, tiny_config, rng=np.random.default_rng(4)
        )
        result = optimizer.run(full_search=True)
        assert len(result.critical_failures) == len(result.all_failures)
