"""Tests for the SLA cost (Eq. 2) and the Fortz-Thorup cost."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SlaParams
from repro.core.fortz import (
    FORTZ_BREAKPOINTS,
    fortz_cost,
    fortz_link_cost,
    uncongested_bound,
)
from repro.core.sla import MS_PER_S, pair_sla_cost, sla_outcome


class TestPairSlaCost:
    def test_zero_below_bound(self):
        params = SlaParams(theta=0.025)
        assert pair_sla_cost(0.024, params) == 0.0
        assert pair_sla_cost(0.025, params) == 0.0

    def test_jump_at_bound(self):
        params = SlaParams(theta=0.025, b1=100.0, b2=1.0)
        cost = pair_sla_cost(0.026, params)
        assert cost == pytest.approx(100.0 + 1.0)  # B1 + 1 ms excess

    def test_linear_in_excess(self):
        params = SlaParams(theta=0.025, b1=100.0, b2=1.0)
        c1 = pair_sla_cost(0.030, params)
        c2 = pair_sla_cost(0.035, params)
        assert c2 - c1 == pytest.approx(5.0)  # 5 ms more excess

    def test_disconnection_penalty(self):
        params = SlaParams(theta=0.025, disconnect_excess_factor=10.0)
        cost = pair_sla_cost(float("inf"), params)
        expected = 100.0 + 1.0 * (10.0 * 0.025 * MS_PER_S)
        assert cost == pytest.approx(expected)


class TestSlaOutcome:
    def test_counts_only_demand_pairs(self):
        delays = np.full((3, 3), 0.030)
        np.fill_diagonal(delays, np.nan)
        demand = np.zeros((3, 3))
        demand[0, 1] = 1.0
        outcome = sla_outcome(delays, demand, SlaParams())
        assert outcome.pairs == 1
        assert outcome.violations == 1
        assert outcome.cost == pytest.approx(100.0 + 5.0)

    def test_no_violations_zero_cost(self):
        delays = np.full((3, 3), 0.010)
        demand = np.ones((3, 3))
        np.fill_diagonal(demand, 0.0)
        outcome = sla_outcome(delays, demand, SlaParams())
        assert outcome.cost == 0.0
        assert outcome.violations == 0
        assert outcome.violation_fraction == 0.0

    def test_disconnected_counted(self):
        delays = np.full((3, 3), 0.010)
        delays[0, 1] = np.inf
        demand = np.ones((3, 3))
        np.fill_diagonal(demand, 0.0)
        outcome = sla_outcome(delays, demand, SlaParams())
        assert outcome.disconnected == 1
        assert outcome.violations == 1

    def test_nan_with_demand_rejected(self):
        delays = np.full((3, 3), np.nan)
        demand = np.ones((3, 3))
        np.fill_diagonal(demand, 0.0)
        with pytest.raises(ValueError, match="no routed delay"):
            sla_outcome(delays, demand, SlaParams())

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            sla_outcome(np.zeros((2, 2)), np.zeros((3, 3)))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 0.2), st.floats(0.0, 0.2))
    def test_monotone_in_delay(self, d1, d2):
        lo, hi = sorted((d1, d2))
        params = SlaParams()
        assert pair_sla_cost(hi, params) >= pair_sla_cost(lo, params)


class TestFortzCost:
    def test_slope_one_at_low_load(self):
        cost = fortz_link_cost(np.asarray([0.1]))
        assert cost[0] == pytest.approx(0.1)

    def test_breakpoint_continuity(self):
        eps = 1e-9
        for bp in FORTZ_BREAKPOINTS[1:]:
            below = fortz_link_cost(np.asarray([bp - eps]))[0]
            above = fortz_link_cost(np.asarray([bp + eps]))[0]
            assert above == pytest.approx(below, rel=1e-5)

    def test_escalating_slopes(self):
        # cost derivative grows across segments
        rhos = np.asarray([0.2, 0.5, 0.8, 0.95, 1.05, 1.2])
        eps = 1e-6
        slopes = (
            fortz_link_cost(rhos + eps) - fortz_link_cost(rhos)
        ) / eps
        assert np.all(np.diff(slopes) > 0)

    def test_expensive_above_capacity(self):
        assert fortz_link_cost(np.asarray([1.2]))[0] > 500.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fortz_link_cost(np.asarray([-0.1]))

    def test_include_mask(self):
        loads = np.asarray([1e8, 2e8])
        cap = np.full(2, 5e8)
        full = fortz_cost(loads, cap)
        only_first = fortz_cost(loads, cap, include=np.asarray([True, False]))
        assert only_first < full
        assert only_first == pytest.approx(
            fortz_link_cost(np.asarray([0.2]))[0]
        )

    def test_uncongested_bound_below_cost(self):
        loads = np.asarray([4e8, 4.9e8])
        cap = np.full(2, 5e8)
        assert uncongested_bound(loads, cap) <= fortz_cost(loads, cap)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 2.0), st.floats(0.0, 0.5))
    def test_monotone_convex(self, rho, step):
        f = fortz_link_cost
        a = f(np.asarray([rho]))[0]
        b = f(np.asarray([rho + step]))[0]
        c = f(np.asarray([rho + 2 * step]))[0]
        assert b >= a
        # convexity: increments grow
        assert (c - b) >= (b - a) - 1e-9
