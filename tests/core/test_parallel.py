"""Tests for the parallel, cache-aware evaluation subsystem.

The contract under test is strict: every evaluator variant — serial,
caching, process-parallel, thread-parallel — must produce *bit-identical*
results for the same inputs.  Parity assertions therefore use exact
equality, not approximate comparisons.
"""

import pickle

import numpy as np
import pytest

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.parallel import (
    CachingDtrEvaluator,
    ParallelDtrEvaluator,
    RoutingCache,
    make_evaluator,
)
from repro.core.weights import WeightSetting
from repro.routing.failures import NORMAL, single_link_failures
from repro.topology.isp import isp_topology
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture(scope="module")
def isp_instance():
    """The seeded 16-node / 70-arc ISP backbone with scaled traffic."""
    network = isp_topology()
    rng = np.random.default_rng(11)
    traffic = scale_to_utilization(
        network,
        dtr_traffic(network.num_nodes, rng, 1.0),
        0.43,
        "mean",
    )
    return network, traffic


@pytest.fixture(scope="module")
def isp_setting(isp_instance):
    network, _ = isp_instance
    return WeightSetting.random(
        network.num_arcs,
        OptimizerConfig().weights,
        np.random.default_rng(23),
    )


def _config(**execution_kwargs) -> OptimizerConfig:
    return OptimizerConfig().replace(
        execution=ExecutionParams(**execution_kwargs)
    )


def _assert_bit_identical(reference, candidate):
    """Exact equality of two FailureEvaluations (costs, SLA, loads)."""
    assert len(reference) == len(candidate)
    assert reference.total_cost.lam == candidate.total_cost.lam
    assert reference.total_cost.phi == candidate.total_cost.phi
    for ref, got in zip(reference.evaluations, candidate.evaluations):
        assert ref.scenario == got.scenario
        assert ref.cost.lam == got.cost.lam
        assert ref.cost.phi == got.cost.phi
        assert ref.sla.violations == got.sla.violations
        assert ref.sla.disconnected == got.sla.disconnected
        assert np.array_equal(ref.loads_delay, got.loads_delay)
        assert np.array_equal(ref.loads_tput, got.loads_tput)
        assert np.array_equal(ref.utilization, got.utilization)


@pytest.mark.parallel
class TestProcessPoolParity:
    def test_sweep_matches_serial_bit_for_bit(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        serial = DtrEvaluator(network, traffic, OptimizerConfig())
        reference = serial.evaluate_failures(isp_setting, failures)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
        _assert_bit_identical(reference, candidate)

    def test_sweep_counts_evaluations(self, isp_instance, isp_setting):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            parallel.evaluate_failures(isp_setting, failures)
            # the sweep plus the on-demand normal (reuse) evaluation
            assert parallel.num_evaluations == len(failures) + 1

    def test_normal_batch_matches_serial(self, isp_instance):
        network, traffic = isp_instance
        config = OptimizerConfig()
        settings = [
            WeightSetting.random(
                network.num_arcs, config.weights, np.random.default_rng(s)
            )
            for s in range(6)
        ]
        serial = DtrEvaluator(network, traffic, config)
        reference = serial.evaluate_normal_batch(settings)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            candidate = parallel.evaluate_normal_batch(settings)
        assert len(candidate) == len(settings)
        for ref, got in zip(reference, candidate):
            assert ref.cost.lam == got.cost.lam
            assert ref.cost.phi == got.cost.phi

    def test_worker_cache_stats_reported(self, isp_instance, isp_setting):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            parallel.evaluate_failures(isp_setting, failures)
            first = parallel.cache_stats
            parallel.evaluate_failures(isp_setting, failures)
            second = parallel.cache_stats
        assert first.lookups > 0
        # the repeat sweep is answered from warm worker caches
        assert second.hits > first.hits


@pytest.mark.parallel
class TestCacheDisabled:
    def test_parallel_without_cache_stays_bit_identical(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        serial = DtrEvaluator(network, traffic, OptimizerConfig())
        reference = serial.evaluate_failures(isp_setting, failures)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, routing_cache=False)
        ) as parallel:
            assert parallel.cache is None
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.cache_stats
        _assert_bit_identical(reference, candidate)
        # routing_cache=False reaches the workers too: nothing cached
        assert stats.lookups == 0


@pytest.mark.parallel
@pytest.mark.slow
class TestOptimizerInvariance:
    def test_phase1_results_do_not_depend_on_n_jobs(
        self, small_instance, tiny_config
    ):
        """Seeded Phase 1 must produce the same result for any n_jobs."""
        from repro.core.phase1 import run_phase1

        network, traffic = small_instance
        serial = make_evaluator(
            network,
            traffic,
            tiny_config.replace(execution=ExecutionParams(n_jobs=1)),
        )
        reference = run_phase1(serial, np.random.default_rng(7))
        with ParallelDtrEvaluator(
            network,
            traffic,
            tiny_config.replace(execution=ExecutionParams(n_jobs=2)),
        ) as parallel:
            candidate = run_phase1(parallel, np.random.default_rng(7))
        assert reference.best_cost.lam == candidate.best_cost.lam
        assert reference.best_cost.phi == candidate.best_cost.phi
        assert reference.best_setting == candidate.best_setting
        assert (
            reference.selection.critical_arcs
            == candidate.selection.critical_arcs
        )
        assert (
            reference.store.total_samples == candidate.store.total_samples
        )


@pytest.mark.parallel
class TestThreadPoolParity:
    def test_sweep_matches_serial_bit_for_bit(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        serial = DtrEvaluator(network, traffic, OptimizerConfig())
        reference = serial.evaluate_failures(isp_setting, failures)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, executor="thread")
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            assert parallel.num_evaluations == len(failures) + 1
        _assert_bit_identical(reference, candidate)


class TestRoutingCache:
    def test_exact_hit_on_repeat(self, small_evaluator, random_setting):
        caching = CachingDtrEvaluator(
            small_evaluator.network,
            small_evaluator.traffic,
            small_evaluator.config,
        )
        caching.evaluate_normal(random_setting)
        assert caching.cache_stats.misses == 2  # one per class
        caching.evaluate_normal(random_setting)
        assert caching.cache_stats.hits_exact == 2

    def test_weight_increase_on_unused_arc_reuses_routing(
        self, small_evaluator, random_setting
    ):
        config = small_evaluator.config
        caching = CachingDtrEvaluator(
            small_evaluator.network, small_evaluator.traffic, config
        )
        normal = caching.evaluate_normal(random_setting)
        unused = ~normal.routing_delay.used_arcs()
        if not unused.any():
            pytest.skip("random setting uses every arc for the delay class")
        arc = int(np.flatnonzero(unused)[0])
        moved = random_setting.copy()
        moved.delay[arc] = config.weights.w_max  # heavier, never used
        before = caching.cache_stats
        outcome = caching.evaluate(moved, NORMAL)
        after = caching.cache_stats
        assert after.hits_incremental == before.hits_incremental + 1
        # and the shortcut is exact: a fresh serial evaluation agrees
        fresh = DtrEvaluator(
            small_evaluator.network, small_evaluator.traffic, config
        ).evaluate(moved, NORMAL)
        assert outcome.cost.lam == fresh.cost.lam
        assert outcome.cost.phi == fresh.cost.phi
        assert np.array_equal(outcome.loads_delay, fresh.loads_delay)

    def test_weight_decrease_never_reuses(
        self, small_evaluator, random_setting
    ):
        config = small_evaluator.config
        caching = CachingDtrEvaluator(
            small_evaluator.network, small_evaluator.traffic, config
        )
        caching.evaluate_normal(random_setting)
        arc = 0
        moved = random_setting.copy()
        moved.delay[arc] = max(1, int(moved.delay[arc]) - 1)
        before = caching.cache_stats
        outcome = caching.evaluate(moved, NORMAL)
        after = caching.cache_stats
        # a decrease can create new shortest paths: must re-route
        assert after.hits_incremental == before.hits_incremental
        fresh = DtrEvaluator(
            small_evaluator.network, small_evaluator.traffic, config
        ).evaluate(moved, NORMAL)
        assert outcome.cost.lam == fresh.cost.lam
        assert outcome.cost.phi == fresh.cost.phi

    def test_single_arc_move_parity_sweep(self, small_evaluator, rng):
        """Random single-arc moves: cached evaluator == fresh serial."""
        config = small_evaluator.config
        network = small_evaluator.network
        caching = CachingDtrEvaluator(
            network, small_evaluator.traffic, config
        )
        serial = DtrEvaluator(network, small_evaluator.traffic, config)
        setting = WeightSetting.random(
            network.num_arcs, config.weights, rng
        )
        for _ in range(25):
            arc = int(rng.integers(0, network.num_arcs))
            setting.delay[arc] = int(
                rng.integers(config.weights.w_min, config.weights.w_max + 1)
            )
            cached = caching.evaluate_normal(setting)
            fresh = serial.evaluate_normal(setting)
            assert cached.cost.lam == fresh.cost.lam
            assert cached.cost.phi == fresh.cost.phi
            assert np.array_equal(cached.loads_delay, fresh.loads_delay)
            assert np.array_equal(cached.loads_tput, fresh.loads_tput)
        assert caching.cache_stats.hits > 0

    def test_lru_eviction_bounds_entries(self):
        cache = RoutingCache(max_entries=1)
        assert len(cache) == 0
        with pytest.raises(ValueError):
            RoutingCache(max_entries=0)


class TestPickling:
    def test_scenario_evaluation_roundtrip(
        self, small_evaluator, random_setting
    ):
        outcome = small_evaluator.evaluate_normal(random_setting)
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.cost.lam == outcome.cost.lam
        assert clone.cost.phi == outcome.cost.phi
        assert clone.scenario == outcome.scenario
        assert clone.sla.violations == outcome.sla.violations
        assert np.array_equal(clone.loads_delay, outcome.loads_delay)
        assert np.array_equal(
            clone.pair_delays, outcome.pair_delays, equal_nan=True
        )
        # the Network back-reference is dropped on serialization ...
        assert clone.routing_delay.network is None
        assert clone.routing_tput.network is None
        # ... and can be lazily rebuilt
        rebound = clone.routing_delay.bind(small_evaluator.network)
        assert rebound.network is small_evaluator.network
        assert np.array_equal(rebound.masks, outcome.routing_delay.masks)

    def test_roundtrip_payload_excludes_network(
        self, small_evaluator, random_setting
    ):
        outcome = small_evaluator.evaluate_normal(random_setting)
        payload = pickle.dumps(outcome)
        with_network = pickle.dumps(
            outcome.routing_delay.bind(small_evaluator.network).network
        )
        # the evaluation (two routings included) must stay well below the
        # cost of shipping the topology itself alongside every scenario
        assert len(payload) < 4 * len(with_network)


class TestMakeEvaluator:
    def test_dispatch(self, small_instance):
        network, traffic = small_instance
        serial = make_evaluator(
            network, traffic, _config(n_jobs=1, routing_cache=False)
        )
        assert type(serial) is DtrEvaluator
        cached = make_evaluator(network, traffic, _config(n_jobs=1))
        assert type(cached) is CachingDtrEvaluator
        parallel = make_evaluator(network, traffic, _config(n_jobs=2))
        assert type(parallel) is ParallelDtrEvaluator
        parallel.close()

    def test_with_traffic_preserves_type(self, small_instance):
        network, traffic = small_instance
        cached = make_evaluator(network, traffic, _config(n_jobs=1))
        sibling = cached.with_traffic(traffic.scaled(2.0))
        assert type(sibling) is CachingDtrEvaluator

    def test_execution_params_validation(self):
        with pytest.raises(ValueError):
            ExecutionParams(n_jobs=-1)
        with pytest.raises(ValueError):
            ExecutionParams(executor="fiber")
        with pytest.raises(ValueError):
            ExecutionParams(chunk_size=0)
        assert ExecutionParams(n_jobs=0).resolved_jobs >= 1


@pytest.mark.parallel
class TestPoolKeying:
    """The worker pool is keyed on (executor, n_jobs) only: retuning
    chunking or sweep knobs between sweeps must keep the warm pool."""

    def test_chunk_size_change_keeps_pool(self, isp_instance, isp_setting):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            reference = parallel.evaluate_failures(isp_setting, failures)
            pool = parallel._pool
            assert pool is not None
            parallel.set_execution(
                ExecutionParams(n_jobs=2, chunk_size=5)
            )
            candidate = parallel.evaluate_failures(isp_setting, failures)
            assert parallel._pool is pool  # same warm pool, new chunking
            # sweep_batching runs inside the workers: must rebuild
            parallel.set_execution(
                ExecutionParams(
                    n_jobs=2, chunk_size=5, sweep_batching="off"
                )
            )
            assert parallel._pool is None
            legacy = parallel.evaluate_failures(isp_setting, failures)
        _assert_bit_identical(reference, candidate)
        _assert_bit_identical(reference, legacy)

    def test_worker_count_change_rebuilds_pool(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            reference = parallel.evaluate_failures(isp_setting, failures)
            pool = parallel._pool
            parallel.set_execution(ExecutionParams(n_jobs=3))
            assert parallel._pool is None  # torn down, rebuilt lazily
            candidate = parallel.evaluate_failures(isp_setting, failures)
            assert parallel._pool is not pool
            assert parallel.n_jobs == 3
        _assert_bit_identical(reference, candidate)

    def test_worker_side_knob_change_rebuilds_pool(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        ) as parallel:
            reference = parallel.evaluate_failures(isp_setting, failures)
            pool = parallel._pool
            # routing_cache is baked into the workers: must rebuild,
            # and the parent-side cache adopts the knob too
            parallel.set_execution(
                ExecutionParams(n_jobs=2, routing_cache=False)
            )
            assert parallel._pool is None
            assert parallel.cache is None
            candidate = parallel.evaluate_failures(isp_setting, failures)
            assert parallel._pool is not pool
        _assert_bit_identical(reference, candidate)


# ----------------------------------------------------------------------
# pool-crash recovery: real worker deaths, not injected ones
# ----------------------------------------------------------------------
@pytest.mark.parallel
class TestPoolFailureRecovery:
    """SIGKILL a live worker out from under the evaluator.

    The fault-harness chaos tests (``test_resilience.py``) kill workers
    from the inside; these kill them from the outside — the parent
    delivers SIGKILL to a pool pid — so the recovery path is exercised
    against a genuine, unannounced process death too.
    """

    def test_sigkill_worker_mid_lifecycle_recovers_bit_identical(
        self, isp_instance, isp_setting
    ):
        import os
        import signal

        network, traffic = isp_instance
        failures = single_link_failures(network)
        serial = DtrEvaluator(network, traffic, OptimizerConfig())
        reference = serial.evaluate_failures(isp_setting, failures)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, retry_backoff=0.0)
        ) as parallel:
            first = parallel.evaluate_failures(isp_setting, failures)
            victims = list(parallel._worker_stats)
            assert victims  # pids reported by the warm sweep
            os.kill(victims[0], signal.SIGKILL)
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
        _assert_bit_identical(reference, first)
        _assert_bit_identical(reference, candidate)
        from repro.core.parallel import _LIVE_SWEEP_STATES

        assert not list(_LIVE_SWEEP_STATES)  # no leaked shm block
        assert stats.pool_rebuilds >= 1
        assert stats.quarantined_tasks == 0

    def test_close_tolerates_broken_pool(self, isp_instance, isp_setting):
        import os
        import signal

        network, traffic = isp_instance
        failures = single_link_failures(network)
        parallel = ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2)
        )
        parallel.evaluate_failures(isp_setting, failures)
        for pid in parallel._worker_stats:
            os.kill(pid, signal.SIGKILL)
        parallel.close()  # must not raise on the broken pool
        parallel.close()  # and stays idempotent

    def test_set_execution_tolerates_broken_pool(
        self, isp_instance, isp_setting
    ):
        import os
        import signal

        network, traffic = isp_instance
        failures = single_link_failures(network)
        serial = DtrEvaluator(network, traffic, OptimizerConfig())
        reference = serial.evaluate_failures(isp_setting, failures)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, retry_backoff=0.0)
        ) as parallel:
            parallel.evaluate_failures(isp_setting, failures)
            for pid in parallel._worker_stats:
                os.kill(pid, signal.SIGKILL)
            # retuning across a corpse must not raise, and the rebuild
            # stays lazy + idempotent
            parallel.set_execution(
                ExecutionParams(n_jobs=3, retry_backoff=0.0)
            )
            assert parallel._pool is None
            candidate = parallel.evaluate_failures(isp_setting, failures)
            assert parallel.n_jobs == 3
        _assert_bit_identical(reference, candidate)


# ----------------------------------------------------------------------
# shared-memory lifecycle under signals and interpreter exit
# ----------------------------------------------------------------------
class TestSweepStateCleanup:
    def test_live_registry_tracks_states(self):
        from repro.core.parallel import (
            SharedSweepState,
            _LIVE_SWEEP_STATES,
        )

        state = SharedSweepState((np.arange(4.0),))
        assert state in _LIVE_SWEEP_STATES
        state.dispose()
        assert state not in _LIVE_SWEEP_STATES
        state.dispose()  # idempotent

    def test_dispose_live_sweep_states_unlinks(self):
        from multiprocessing import shared_memory

        from repro.core.parallel import (
            SharedSweepState,
            _dispose_live_sweep_states,
        )

        state = SharedSweepState((np.arange(8.0),))
        name = state.name
        _dispose_live_sweep_states()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_sigterm_unlinks_shared_memory(self, tmp_path):
        """A SIGTERM'd process must not leak its shm block: the cleanup
        handler unlinks live states, then re-delivers the signal."""
        import signal
        import subprocess
        import sys
        from pathlib import Path

        name_file = tmp_path / "name.txt"
        code = (
            "import os, signal\n"
            "import numpy as np\n"
            "from repro.core.parallel import SharedSweepState\n"
            "state = SharedSweepState((np.arange(16.0),))\n"
            f"open({str(name_file)!r}, 'w').write(state.name)\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n"
            "raise SystemExit('unreachable: SIGTERM did not fire')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(
                    Path(__file__).resolve().parents[2] / "src"
                ),
                "PATH": "/usr/bin:/bin",
            },
        )
        # Died by SIGTERM (the handler re-raises with SIG_DFL)...
        assert proc.returncode == -signal.SIGTERM, proc.stderr
        # ...and the block it owned is gone.
        from multiprocessing import shared_memory

        name = name_file.read_text()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_handler_defers_to_existing_sigterm_handler(self):
        """When another SIGTERM handler is already installed (e.g. the
        CheckpointManager's), the cleanup must not displace it."""
        import signal
        import threading

        import repro.core.parallel as par

        if threading.current_thread() is not threading.main_thread():
            pytest.skip("signal handling requires the main thread")
        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGTERM, sentinel)
        installed_flag = par._SWEEP_CLEANUP_INSTALLED
        try:
            par._SWEEP_CLEANUP_INSTALLED = False
            state = par.SharedSweepState((np.arange(4.0),))
            try:
                assert signal.getsignal(signal.SIGTERM) is sentinel
            finally:
                state.dispose()
        finally:
            par._SWEEP_CLEANUP_INSTALLED = installed_flag
            signal.signal(signal.SIGTERM, previous)
