"""Chaos tests for the supervised parallel sweep executor.

Every test here pins the same invariant from a different failure mode:
a sweep run under injected faults — worker SIGKILL, poison tasks, task
timeouts, exhausted sweep deadlines — must **complete with results
bit-identical to a fault-free serial run**, with the damage visible in
``resilience_stats`` and no shared-memory block left behind.

Fault plans come from :mod:`repro.core.faults`, keyed on deterministic
task sequence numbers, so every chaos run here is reproducible.
"""

import numpy as np
import pytest

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.checkpoint import execution_fingerprint
from repro.core.evaluation import DtrEvaluator
from repro.core.faults import FaultPlan, StageFault, TaskDelay, WorkerKill
from repro.core.parallel import _LIVE_SWEEP_STATES, ParallelDtrEvaluator
from repro.core.resilience import (
    FAILURE_DEAD_POOL,
    FAILURE_TASK_ERROR,
    FAILURE_TIMEOUT,
    ResilienceStats,
    RetryPolicy,
    classify_failure,
    global_stats,
)
from repro.core.weights import WeightSetting
from repro.routing.failures import single_link_failures
from repro.topology.isp import isp_topology
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture(scope="module")
def isp_instance():
    """The seeded 16-node / 70-arc ISP backbone with scaled traffic."""
    network = isp_topology()
    rng = np.random.default_rng(11)
    traffic = scale_to_utilization(
        network,
        dtr_traffic(network.num_nodes, rng, 1.0),
        0.43,
        "mean",
    )
    return network, traffic


@pytest.fixture(scope="module")
def isp_setting(isp_instance):
    network, _ = isp_instance
    return WeightSetting.random(
        network.num_arcs,
        OptimizerConfig().weights,
        np.random.default_rng(23),
    )


@pytest.fixture(scope="module")
def reference_sweep(isp_instance, isp_setting):
    """The fault-free serial sweep every chaos run must reproduce."""
    network, traffic = isp_instance
    serial = DtrEvaluator(network, traffic, OptimizerConfig())
    return serial.evaluate_failures(
        isp_setting, single_link_failures(network)
    )


def _config(**execution_kwargs) -> OptimizerConfig:
    return OptimizerConfig().replace(
        execution=ExecutionParams(**execution_kwargs)
    )


def _assert_bit_identical(reference, candidate):
    """Exact equality of two FailureEvaluations (costs, SLA, loads)."""
    assert len(reference) == len(candidate)
    assert reference.total_cost.lam == candidate.total_cost.lam
    assert reference.total_cost.phi == candidate.total_cost.phi
    for ref, got in zip(reference.evaluations, candidate.evaluations):
        assert ref.scenario == got.scenario
        assert ref.cost.lam == got.cost.lam
        assert ref.cost.phi == got.cost.phi
        assert ref.sla.violations == got.sla.violations
        assert ref.sla.disconnected == got.sla.disconnected
        assert np.array_equal(ref.loads_delay, got.loads_delay)
        assert np.array_equal(ref.loads_tput, got.loads_tput)
        assert np.array_equal(ref.utilization, got.utilization)


def _assert_no_leaked_shm():
    """Every shared sweep block has been disposed (nothing live)."""
    assert not list(_LIVE_SWEEP_STATES)


class TestClassifyFailure:
    def test_classes(self):
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        assert classify_failure(BrokenProcessPool()) == FAILURE_DEAD_POOL
        assert (
            classify_failure(concurrent.futures.TimeoutError())
            == FAILURE_TIMEOUT
        )
        assert classify_failure(TimeoutError()) == FAILURE_TIMEOUT
        assert classify_failure(ValueError("boom")) == FAILURE_TASK_ERROR


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff=0.1, max_backoff=0.4)
        a = [
            policy.backoff_seconds(k, np.random.default_rng(0))
            for k in (1, 2, 3, 6)
        ]
        b = [
            policy.backoff_seconds(k, np.random.default_rng(0))
            for k in (1, 2, 3, 6)
        ]
        assert a == b
        assert all(0.0 < s <= 0.4 for s in a)
        assert a[-1] == 0.4  # deep retries saturate at the cap

    def test_zero_backoff_never_sleeps(self):
        policy = RetryPolicy(backoff=0.0)
        assert policy.backoff_seconds(3, np.random.default_rng(0)) == 0.0

    def test_from_execution(self):
        execution = ExecutionParams(
            max_retries=5,
            retry_backoff=0.2,
            task_timeout=3.0,
            sweep_deadline=30.0,
        )
        policy = RetryPolicy.from_execution(execution)
        assert policy.max_attempts == 6
        assert policy.task_timeout == 3.0
        assert policy.sweep_deadline == 30.0


class TestResilienceStats:
    def test_add_and_dict(self):
        a = ResilienceStats(worker_failures=1, retries=2)
        b = ResilienceStats(worker_failures=1, quarantined_tasks=1)
        total = a + b
        assert total.worker_failures == 2
        assert total.retries == 2
        assert total.total_failures == 2
        assert total.degraded
        assert not a.degraded
        assert total.as_dict()["quarantined_tasks"] == 1


@pytest.mark.parallel
class TestChaosParity:
    """Injected faults: the sweep completes bit-identical regardless."""

    def test_worker_kill_recovers_bit_identical(
        self, isp_instance, isp_setting, reference_sweep
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        plan = FaultPlan(faults=(WorkerKill(task=0),))
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, fault_plan=plan)
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
            assert parallel.num_evaluations == len(failures) + 1
            # the next sweep on the rebuilt pool is healthy too
            again = parallel.evaluate_failures(isp_setting, failures)
        _assert_bit_identical(reference_sweep, candidate)
        _assert_bit_identical(reference_sweep, again)
        _assert_no_leaked_shm()
        assert stats.worker_failures >= 1
        assert stats.retries >= 1
        assert stats.pool_rebuilds >= 1
        # the retry succeeded: nothing was degraded to serial
        assert stats.quarantined_tasks == 0
        assert not stats.degraded

    def test_poison_task_is_quarantined(
        self, isp_instance, isp_setting, reference_sweep
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        # attempts=None: the fault fires on *every* retry of task 0
        plan = FaultPlan(
            faults=(StageFault(stage="task", task=0, attempts=None),)
        )
        with ParallelDtrEvaluator(
            network,
            traffic,
            _config(
                n_jobs=2, fault_plan=plan, max_retries=1, retry_backoff=0.0
            ),
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
            assert parallel.num_evaluations == len(failures) + 1
        _assert_bit_identical(reference_sweep, candidate)
        _assert_no_leaked_shm()
        assert stats.task_failures == 2  # initial attempt + one retry
        assert stats.retries == 1
        assert stats.quarantined_tasks == 1
        assert stats.degraded

    def test_stage_fault_inside_batch_engine_retries_clean(
        self, isp_instance, isp_setting, reference_sweep
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        plan = FaultPlan(
            faults=(StageFault(stage="route_batch", task=1),)
        )
        with ParallelDtrEvaluator(
            network,
            traffic,
            _config(n_jobs=2, fault_plan=plan, retry_backoff=0.0),
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
        _assert_bit_identical(reference_sweep, candidate)
        _assert_no_leaked_shm()
        assert stats.task_failures == 1
        assert stats.retries == 1
        assert stats.quarantined_tasks == 0

    def test_legacy_by_value_path_recovers_too(
        self, isp_instance, isp_setting, reference_sweep
    ):
        """Chaos parity holds on the sweep_batching='off' task shape."""
        network, traffic = isp_instance
        failures = single_link_failures(network)
        plan = FaultPlan(
            faults=(StageFault(stage="task", task=0, attempts=None),)
        )
        with ParallelDtrEvaluator(
            network,
            traffic,
            _config(
                n_jobs=2,
                sweep_batching="off",
                fault_plan=plan,
                max_retries=1,
                retry_backoff=0.0,
            ),
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
            assert parallel.num_evaluations == len(failures) + 1
        _assert_bit_identical(reference_sweep, candidate)
        assert stats.quarantined_tasks == 1

    @pytest.mark.slow
    def test_task_timeout_recycles_wedged_worker(
        self, isp_instance, isp_setting, reference_sweep
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        plan = FaultPlan(faults=(TaskDelay(task=0, seconds=3.0),))
        with ParallelDtrEvaluator(
            network,
            traffic,
            _config(
                n_jobs=2,
                fault_plan=plan,
                task_timeout=0.75,
                retry_backoff=0.0,
            ),
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
        _assert_bit_identical(reference_sweep, candidate)
        _assert_no_leaked_shm()
        assert stats.timeouts >= 1
        assert stats.retries >= 1
        assert stats.pool_rebuilds >= 1
        assert stats.quarantined_tasks == 0

    def test_sweep_deadline_degrades_remainder_serially(
        self, isp_instance, isp_setting, reference_sweep
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        with ParallelDtrEvaluator(
            network, traffic, _config(n_jobs=2, sweep_deadline=1e-9)
        ) as parallel:
            candidate = parallel.evaluate_failures(isp_setting, failures)
            stats = parallel.resilience_stats
            assert parallel.num_evaluations == len(failures) + 1
        _assert_bit_identical(reference_sweep, candidate)
        _assert_no_leaked_shm()
        # every ticket ran on the parent's serial path
        assert stats.deadline_degraded_tasks > 0
        assert stats.degraded
        assert stats.retries == 0

    def test_global_stats_mirror_chaos_events(
        self, isp_instance, isp_setting
    ):
        network, traffic = isp_instance
        failures = single_link_failures(network)
        plan = FaultPlan(
            faults=(StageFault(stage="task", task=0, attempts=(1,)),)
        )
        before = global_stats()
        with ParallelDtrEvaluator(
            network,
            traffic,
            _config(n_jobs=2, fault_plan=plan, retry_backoff=0.0),
        ) as parallel:
            parallel.evaluate_failures(isp_setting, failures)
            local = parallel.resilience_stats
        after = global_stats()
        assert local.task_failures == 1
        assert after.task_failures - before.task_failures == 1
        assert after.retries - before.retries == 1


@pytest.mark.parallel
class TestCheckpointFingerprint:
    """Crashed runs may resume with different retry knobs: the
    execution fingerprint must ignore every resilience knob."""

    def test_fingerprint_invariant_to_resilience_knobs(self):
        base = execution_fingerprint(ExecutionParams(n_jobs=2))
        retuned = execution_fingerprint(
            ExecutionParams(
                n_jobs=2,
                max_retries=9,
                retry_backoff=1.5,
                task_timeout=10.0,
                sweep_deadline=600.0,
                fault_plan=FaultPlan(
                    faults=(WorkerKill(task=0),), seed=3
                ),
            )
        )
        assert base == retuned

    def test_fingerprint_still_sees_execution_shape(self):
        base = execution_fingerprint(ExecutionParams(n_jobs=2))
        assert base != execution_fingerprint(ExecutionParams(n_jobs=3))
        assert base != execution_fingerprint(
            ExecutionParams(n_jobs=2, sweep_batching="off")
        )
