"""Tests for weight settings and perturbation moves."""

import numpy as np
import pytest

from repro.config import WeightParams
from repro.core.perturbation import (
    random_pair_move,
    random_phase2_move,
    random_single_class_move,
    scramble_some_arcs,
)
from repro.core.weights import WeightSetting


@pytest.fixture
def params() -> WeightParams:
    return WeightParams(w_min=1, w_max=20, q=0.7)


class TestWeightSetting:
    def test_uniform(self):
        ws = WeightSetting.uniform(5, 3)
        assert np.all(ws.delay == 3)
        assert np.all(ws.tput == 3)

    def test_random_within_bounds(self, params, rng):
        ws = WeightSetting.random(100, params, rng)
        assert ws.delay.min() >= 1 and ws.delay.max() <= 20
        assert ws.tput.min() >= 1 and ws.tput.max() <= 20

    def test_copy_is_independent(self, params, rng):
        ws = WeightSetting.random(10, params, rng)
        cp = ws.copy()
        cp.set_arc(0, 7, 9)
        assert ws.arc_pair(0) != (7, 9) or (7, 9) == ws.arc_pair(0)
        assert not np.shares_memory(ws.delay, cp.delay)

    def test_set_arc(self, params, rng):
        ws = WeightSetting.random(10, params, rng)
        ws.set_arc(3, 5, 6)
        assert ws.arc_pair(3) == (5, 6)

    def test_set_arc_validates(self):
        ws = WeightSetting.uniform(4)
        with pytest.raises(ValueError):
            ws.set_arc(0, 0, 5)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightSetting(np.zeros(3, dtype=int), np.ones(3, dtype=int))

    def test_emulates_failure(self, params):
        ws = WeightSetting.uniform(4)
        assert not ws.emulates_failure(0, params)
        ws.set_arc(0, 14, 20)  # floor = ceil(0.7*20) = 14
        assert ws.emulates_failure(0, params)
        ws.set_arc(0, 13, 20)
        assert not ws.emulates_failure(0, params)

    def test_fail_arc_weights(self, params, rng):
        ws = WeightSetting.uniform(4)
        ws.fail_arc_weights(2, params, rng)
        assert ws.emulates_failure(2, params)

    def test_key_and_equality(self, params, rng):
        ws = WeightSetting.random(8, params, rng)
        assert ws == ws.copy()
        assert ws.key() == ws.copy().key()
        other = ws.copy()
        other.set_arc(0, (ws.arc_pair(0)[0] % 20) + 1, ws.arc_pair(0)[1])
        assert ws.key() != other.key()


class TestMoves:
    def test_pair_move_apply_revert(self, params, rng):
        ws = WeightSetting.uniform(6, 5)
        move = random_pair_move(ws, 2, params, rng)
        move.apply(ws)
        assert ws.arc_pair(2) == (move.new_delay, move.new_tput)
        move.revert(ws)
        assert ws.arc_pair(2) == (5, 5)

    def test_single_class_move_changes_one_class(self, params, rng):
        ws = WeightSetting.uniform(6, 5)
        move = random_single_class_move(ws, 1, params, rng)
        changed = (move.new_delay != 5) + (move.new_tput != 5)
        assert changed <= 1

    def test_phase2_move_within_bounds(self, params, rng):
        ws = WeightSetting.uniform(6, 5)
        for _ in range(50):
            move = random_phase2_move(ws, 0, params, rng)
            assert 1 <= move.new_delay <= 20
            assert 1 <= move.new_tput <= 20

    def test_changes_anything_flag(self, params):
        ws = WeightSetting.uniform(4, 7)
        from repro.core.perturbation import Move

        noop = Move(0, 7, 7, 7, 7)
        assert not noop.changes_anything
        real = Move(0, 8, 7, 7, 7)
        assert real.changes_anything

    def test_scramble_some_arcs(self, params, rng):
        ws = WeightSetting.uniform(20, 5)
        scrambled = scramble_some_arcs(ws, params, rng, fraction=0.25)
        # original untouched
        assert np.all(ws.delay == 5)
        differences = int(
            (scrambled.delay != 5).sum() + (scrambled.tput != 5).sum()
        )
        assert differences >= 1

    def test_scramble_fraction_validated(self, params, rng):
        ws = WeightSetting.uniform(4)
        with pytest.raises(ValueError):
            scramble_some_arcs(ws, params, rng, fraction=1.5)
