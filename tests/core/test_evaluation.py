"""Tests for the DTR evaluator (cost oracle)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.weights import WeightSetting
from repro.routing.failures import (
    single_link_failures,
    single_node_failures,
)


class TestEvaluateNormal:
    def test_components_consistent(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        assert outcome.cost.lam == pytest.approx(outcome.sla.cost)
        assert outcome.cost.phi >= 0
        assert outcome.scenario.is_normal
        np.testing.assert_allclose(
            outcome.total_loads, outcome.loads_delay + outcome.loads_tput
        )

    def test_all_pairs_have_delays(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        n = small_evaluator.network.num_nodes
        off_diag = ~np.eye(n, dtype=bool)
        # every pair carries delay demand in the gravity model
        assert np.all(np.isfinite(outcome.pair_delays[off_diag]))

    def test_utilization_positive(self, small_evaluator, random_setting):
        outcome = small_evaluator.evaluate_normal(random_setting)
        assert outcome.utilization.max() > 0

    def test_evaluation_counter(self, small_evaluator, random_setting):
        before = small_evaluator.num_evaluations
        small_evaluator.evaluate_normal(random_setting)
        assert small_evaluator.num_evaluations == before + 1

    def test_wrong_size_setting_rejected(self, small_evaluator):
        with pytest.raises(ValueError, match="match"):
            small_evaluator.evaluate_normal(WeightSetting.uniform(3))

    def test_deterministic(self, small_evaluator, random_setting):
        a = small_evaluator.evaluate_normal(random_setting)
        b = small_evaluator.evaluate_normal(random_setting)
        assert a.cost == b.cost


class TestEvaluateFailures:
    def test_failure_costs_not_below_floor(
        self, small_evaluator, random_setting
    ):
        failures = single_link_failures(small_evaluator.network)
        evaluation = small_evaluator.evaluate_failures(
            random_setting, failures
        )
        assert len(evaluation) == len(failures)
        assert evaluation.total_cost.lam >= 0

    def test_violations_vector(self, small_evaluator, random_setting):
        failures = single_link_failures(small_evaluator.network)
        evaluation = small_evaluator.evaluate_failures(
            random_setting, failures
        )
        assert evaluation.violations.shape == (len(failures),)
        assert evaluation.mean_violations() == pytest.approx(
            evaluation.violations.mean()
        )

    def test_top_fraction(self, small_evaluator, random_setting):
        failures = single_link_failures(small_evaluator.network)
        evaluation = small_evaluator.evaluate_failures(
            random_setting, failures
        )
        top = evaluation.top_fraction_mean_violations(0.1)
        assert top >= evaluation.mean_violations()
        with pytest.raises(ValueError):
            evaluation.top_fraction_mean_violations(0.0)

    def test_node_failure_drops_pairs(self, small_evaluator, random_setting):
        failures = single_node_failures(small_evaluator.network, nodes=[0])
        outcome = small_evaluator.evaluate(random_setting, failures[0])
        n = small_evaluator.network.num_nodes
        # pairs involving node 0 are out of the SLA population
        assert outcome.sla.pairs == (n - 1) * (n - 2)


@pytest.mark.slow  # property-based sweep over every single-link failure
class TestReuseShortcut:
    # the evaluator fixture is stateless apart from a call counter, so
    # sharing it across generated examples is safe
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 10_000))
    def test_shortcut_matches_direct(self, small_evaluator, seed):
        setting = WeightSetting.random(
            small_evaluator.network.num_arcs,
            small_evaluator.config.weights,
            np.random.default_rng(seed),
        )
        normal = small_evaluator.evaluate_normal(setting)
        for scenario in single_link_failures(small_evaluator.network):
            direct = small_evaluator.evaluate(setting, scenario)
            shortcut = small_evaluator.evaluate(
                setting, scenario, reuse=normal
            )
            assert direct.cost.lam == pytest.approx(
                shortcut.cost.lam, abs=1e-9
            )
            assert direct.cost.phi == pytest.approx(
                shortcut.cost.phi, rel=1e-12
            )
            assert direct.sla.violations == shortcut.sla.violations

    def test_reuse_ignored_for_node_failures(
        self, small_evaluator, random_setting
    ):
        normal = small_evaluator.evaluate_normal(random_setting)
        scenario = single_node_failures(
            small_evaluator.network, nodes=[1]
        )[0]
        direct = small_evaluator.evaluate(random_setting, scenario)
        with_reuse = small_evaluator.evaluate(
            random_setting, scenario, reuse=normal
        )
        assert direct.cost == with_reuse.cost


class TestWithTraffic:
    def test_sibling_evaluator(self, small_evaluator, random_setting):
        doubled = small_evaluator.traffic.scaled(2.0)
        sibling = small_evaluator.with_traffic(doubled)
        base = small_evaluator.evaluate_normal(random_setting)
        heavy = sibling.evaluate_normal(random_setting)
        # doubled traffic, same routing: exactly doubled loads
        np.testing.assert_allclose(
            heavy.total_loads, 2.0 * base.total_loads, rtol=1e-9
        )
        assert heavy.cost.phi >= base.cost.phi
