"""RoutingCache LRU behavior, especially under mixed variant digests.

The cache is the warm-sweep backbone of the caching/parallel
evaluators; these tests pin its eviction order, its hit accounting,
and — for failure x surge cross products — that the per-variant
*sibling* caches stay individually bounded, so wide cross products
cannot blow memory up cross-product-style.
"""

import numpy as np
import pytest

from repro.config import ExecutionParams
from repro.core.evaluation import _VARIANT_NORMAL_CACHE
from repro.core.parallel import CachingDtrEvaluator, RoutingCache
from repro.core.weights import WeightSetting
from repro.routing.failures import NORMAL, single_link_failures
from repro.scenarios import (
    GaussianSurge,
    ScenarioSet,
    cross,
    srlg_failures,
)


def _routing_for(evaluator, setting):
    """A real ClassRouting to stock the cache with."""
    return evaluator.evaluate_normal(setting).routing_delay


@pytest.fixture
def stocked(small_evaluator, random_setting):
    routing = _routing_for(small_evaluator, random_setting)
    return routing


@pytest.fixture
def num_arcs(small_evaluator):
    return small_evaluator.network.num_arcs


class TestLruSemantics:
    def test_eviction_order_is_least_recently_used(self, stocked, num_arcs):
        cache = RoutingCache(max_entries=3)
        weights = [
            np.full(num_arcs, value, dtype=np.float64)
            for value in (1, 2, 3, 4)
        ]
        for w in weights[:3]:
            cache.put("delay", NORMAL, w, stocked)
        assert len(cache) == 3
        # touch the oldest entry; the middle one becomes LRU
        assert cache.get("delay", NORMAL, weights[0]) is not None
        cache.put("delay", NORMAL, weights[3], stocked)
        assert len(cache) == 3
        assert cache.get("delay", NORMAL, weights[1]) is None  # evicted
        assert cache.get("delay", NORMAL, weights[0]) is not None
        assert cache.get("delay", NORMAL, weights[3]) is not None

    def test_put_of_existing_key_refreshes_not_duplicates(
        self, stocked, num_arcs
    ):
        cache = RoutingCache(max_entries=2)
        w1 = np.full(num_arcs, 1.0)
        w2 = np.full(num_arcs, 2.0)
        cache.put("delay", NORMAL, w1, stocked)
        cache.put("delay", NORMAL, w2, stocked)
        cache.put("delay", NORMAL, w1, stocked)  # refresh, no growth
        assert len(cache) == 2
        w3 = np.full(num_arcs, 3.0)
        cache.put("delay", NORMAL, w3, stocked)
        # w2 was LRU after w1's refresh
        assert cache.get("delay", NORMAL, w2) is None
        assert cache.get("delay", NORMAL, w1) is not None

    def test_hit_accounting(self, stocked, num_arcs):
        cache = RoutingCache(max_entries=4)
        w = np.full(num_arcs, 1.0)
        assert cache.get("delay", NORMAL, w) is None
        cache.put("delay", NORMAL, w, stocked)
        assert cache.get("delay", NORMAL, w) is not None
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits_exact == 1
        assert stats.hits == 1
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_clear_keeps_counters(self, stocked, num_arcs):
        cache = RoutingCache(max_entries=4)
        w = np.full(num_arcs, 1.0)
        cache.put("delay", NORMAL, w, stocked)
        cache.get("delay", NORMAL, w)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits_exact == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RoutingCache(max_entries=0)


class TestVariantSiblingBounds:
    def test_cross_product_sweeps_stay_bounded(
        self, small_instance, tiny_config
    ):
        """A failure x surge cross sweep builds one sibling per variant
        digest, each with its own size-bounded routing cache and a
        bounded NORMAL LRU — no cross-product memory blowup."""
        network, traffic = small_instance
        cache_size = 8
        config = tiny_config.replace(
            execution=ExecutionParams(cache_size=cache_size)
        )
        evaluator = CachingDtrEvaluator(network, traffic, config)
        variants = [GaussianSurge(seed=s) for s in range(3)]
        scenarios = cross(
            srlg_failures(network, num_groups=3, group_size=2, seed=4),
            variants,
        )
        settings = [
            WeightSetting.random(
                network.num_arcs,
                config.weights,
                np.random.default_rng(s),
            )
            for s in range(7)
        ]
        for setting in settings:
            evaluator.evaluate_scenarios(setting, scenarios)
        siblings = evaluator._variant_evaluators
        assert len(siblings) == len(variants)  # one per digest, reused
        for sibling in siblings.values():
            assert sibling.cache is not None
            assert len(sibling.cache) <= cache_size
        assert len(evaluator.cache) <= cache_size
        for lru in evaluator._variant_normal_cache.values():
            assert len(lru) <= _VARIANT_NORMAL_CACHE
        evaluator.close()
        assert not evaluator._variant_evaluators

    def test_mixed_digest_entries_never_collide(
        self, small_instance, tiny_config
    ):
        """Sibling caches are keyed per variant digest: the same
        (weights, scenario) key under two variants yields two distinct
        routings, each bit-exact for its own traffic."""
        network, traffic = small_instance
        evaluator = CachingDtrEvaluator(network, traffic, tiny_config)
        setting = WeightSetting.random(
            network.num_arcs,
            tiny_config.weights,
            np.random.default_rng(21),
        )
        failures = ScenarioSet.from_failures(single_link_failures(network))
        variants = [GaussianSurge(seed=1), GaussianSurge(seed=2)]
        sweeps = {
            v.digest: evaluator.evaluate_scenarios(
                setting, cross(failures, [v])
            )
            for v in variants
        }
        a, b = (sweeps[v.digest] for v in variants)
        # different surges genuinely produce different loads somewhere
        assert any(
            not np.array_equal(x.loads_delay, y.loads_delay)
            for x, y in zip(a.evaluations, b.evaluations)
        )
        # and each sibling independently reproduces its own sweep
        repeat = evaluator.evaluate_scenarios(
            setting, cross(failures, [variants[0]])
        )
        for x, y in zip(a.evaluations, repeat.evaluations):
            assert x.cost.lam == y.cost.lam
            assert np.array_equal(x.loads_delay, y.loads_delay)
        evaluator.close()
