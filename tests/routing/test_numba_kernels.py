"""The JIT backend: kernel parity, soft-dependency gating, CLI surface.

``repro.routing.numba_kernels`` ships pure-Python loop bodies wrapped in
``@njit`` when numba is importable and in an identity decorator when it
is not, so the parity tests below always exercise the exact statements
the JIT compiles — bit-identical results on this interpreter imply
bit-identical results compiled (numba's default ``njit`` keeps IEEE
semantics; no fastmath).  Tests that need an actually-compiled kernel
are marked ``jit`` and skip without numba; the gating tests monkeypatch
the availability probe so both sides of the soft dependency are pinned
on every machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing import backend as backend_mod
from repro.routing import numba_kernels
from repro.routing.backend import (
    NUMBA_CROSSOVER_WORK,
    backend_availability,
    resolve_backend,
    resolve_batch_backend,
    routing_kernels,
    validate_backend,
)
from repro.routing.engine import RoutingEngine
from repro.routing.failures import NORMAL, FailureScenario
from repro.routing.vectorized import (
    BatchPlan,
    batch_propagate_loads,
    batch_propagate_mean_delay,
    batch_propagate_worst_delay,
    batch_total_loads,
    build_schedule,
)
from repro.topology import isp_topology, powerlaw_topology, rand_topology
from repro.traffic import dtr_traffic

INSTANCES = [
    pytest.param(lambda rng: powerlaw_topology(24, 3, rng), id="pl24"),
    pytest.param(lambda rng: rand_topology(20, 4.5, rng), id="rand20"),
    pytest.param(lambda rng: isp_topology(), id="isp"),
]


def make_instance(build, seed: int):
    rng = np.random.default_rng(seed)
    network = build(rng)
    demands = dtr_traffic(network.num_nodes, rng, 1.0).delay.values
    return network, demands, rng


def random_scenario(network, rng, kind: int) -> FailureScenario:
    if kind == 0:
        return NORMAL
    if kind == 1:
        arcs = rng.integers(0, network.num_arcs, size=2)
        return FailureScenario(failed_arcs=tuple(int(a) for a in arcs))
    node = int(rng.integers(0, network.num_nodes))
    return FailureScenario(
        failed_arcs=tuple(int(a) for a in network.arcs_of_node(node)),
        removed_nodes=(node,),
    )


class TestKernelParity:
    """numba_kernels wrappers vs the vector kernels, bit for bit.

    Scenarios include arc failures and node removals, so masked columns
    (unreachable demand, dead-end volumes) run through both stacks.
    """

    @pytest.mark.parametrize("build", INSTANCES)
    def test_loads_totals_delays(self, build):
        network, demands, rng = make_instance(build, seed=211)
        engine = RoutingEngine(network, backend="python")
        plan = BatchPlan.for_network(network)
        for trial in range(6):
            weights = rng.integers(1, 20, network.num_arcs).astype(
                np.float64
            )
            scenario = random_scenario(network, rng, trial % 3)
            routing = engine.route_class(weights, demands, scenario)
            dests = routing.destinations
            cols = routing.dist[:, dests]
            demand_cols = demands[:, dests]

            ref = batch_propagate_loads(
                plan, routing.masks, cols, demand_cols, dests
            )
            got = numba_kernels.batch_propagate_loads(
                plan, routing.masks, cols, demand_cols, dests
            )
            np.testing.assert_array_equal(got[0], ref[0])
            np.testing.assert_array_equal(got[1], ref[1])

            ref_total = batch_total_loads(
                plan, routing.masks, cols, demand_cols, dests
            )
            got_total = numba_kernels.batch_total_loads(
                plan, routing.masks, cols, demand_cols, dests
            )
            np.testing.assert_array_equal(got_total[0], ref_total[0])
            np.testing.assert_array_equal(got_total[1], ref_total[1])

            arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
            np.testing.assert_array_equal(
                numba_kernels.batch_propagate_worst_delay(
                    plan, routing.masks, cols, arc_delays, dests
                ),
                batch_propagate_worst_delay(
                    plan, routing.masks, cols, arc_delays, dests
                ),
            )
            np.testing.assert_array_equal(
                numba_kernels.batch_propagate_mean_delay(
                    plan, routing.masks, cols, arc_delays, dests
                ),
                batch_propagate_mean_delay(
                    plan, routing.masks, cols, arc_delays, dests
                ),
            )

    def test_schedule_supplied_path(self):
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(24, 3, g), seed=17
        )
        engine = RoutingEngine(network, backend="python")
        plan = BatchPlan.for_network(network)
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        routing = engine.route_class(weights, demands)
        dests = routing.destinations
        cols = routing.dist[:, dests]
        schedule = build_schedule(plan, routing.masks, cols)
        without = numba_kernels.batch_propagate_loads(
            plan, routing.masks, cols, demands[:, dests], dests
        )
        with_sched = numba_kernels.batch_propagate_loads(
            plan,
            routing.masks,
            cols,
            demands[:, dests],
            dests,
            schedule=schedule,
        )
        np.testing.assert_array_equal(without[0], with_sched[0])
        np.testing.assert_array_equal(without[1], with_sched[1])
        arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
        np.testing.assert_array_equal(
            numba_kernels.batch_propagate_worst_delay(
                plan, None, None, arc_delays, dests, schedule=schedule
            ),
            batch_propagate_worst_delay(
                plan, routing.masks, cols, arc_delays, dests
            ),
        )

    def test_delay_rows_path(self):
        """Scenario-axis stacks: per-column delay rows match vectorized."""
        network, demands, rng = make_instance(
            lambda g: rand_topology(20, 4.5, g), seed=29
        )
        engine = RoutingEngine(network, backend="python")
        plan = BatchPlan.for_network(network)
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        routing = engine.route_class(weights, demands)
        dests = routing.destinations
        cols = routing.dist[:, dests]
        delay_stack = rng.uniform(1e-3, 1e-2, (3, network.num_arcs))
        rows = rng.integers(0, 3, dests.size)
        for numba_kernel, ref_kernel in (
            (
                numba_kernels.batch_propagate_worst_delay,
                batch_propagate_worst_delay,
            ),
            (
                numba_kernels.batch_propagate_mean_delay,
                batch_propagate_mean_delay,
            ),
        ):
            np.testing.assert_array_equal(
                numba_kernel(
                    plan,
                    routing.masks,
                    cols,
                    delay_stack,
                    dests,
                    delay_rows=rows,
                ),
                ref_kernel(
                    plan,
                    routing.masks,
                    cols,
                    delay_stack,
                    dests,
                    delay_rows=rows,
                ),
            )


class TestSoftDependencyGating:
    """Both sides of the import gate, pinned via the memoized probe."""

    def test_absent_validate_raises_with_hint(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", False)
        with pytest.raises(ValueError, match="pip install numba"):
            validate_backend("numba")

    def test_absent_auto_never_selects_numba(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", False)
        # Far above every crossover: auto must resolve exactly as it
        # did before the JIT backend existed.
        assert resolve_backend("auto", 400, 2400, 400) == "vector"
        assert resolve_backend("auto", 16, 70, 16) == "python"
        assert resolve_batch_backend("auto", 400, 2400, 400) == "vector"

    def test_absent_execution_params_raise(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", False)
        from repro.config import ExecutionParams

        with pytest.raises(ValueError, match="pip install numba"):
            ExecutionParams(routing_backend="numba")

    def test_absent_availability_report(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", False)
        info = backend_availability()
        assert info["python"] is True
        assert info["vector"] is True
        assert info["numba"] is False
        assert info["numba_version"] is None
        assert info["numpy_version"] == np.__version__

    def test_present_numba_passes_through(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", True)
        assert validate_backend("numba") == "numba"
        assert resolve_backend("numba", 10, 40, 10) == "numba"

    def test_present_auto_uses_jit_crossover(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_NUMBA_AVAILABLE", True)
        d = NUMBA_CROSSOVER_WORK // 100
        assert resolve_backend("auto", 60, 40, d - 1) == "python"
        assert resolve_backend("auto", 60, 40, d + 1) == "numba"
        assert resolve_batch_backend("auto", 60, 40, d - 1) == "vector"
        assert resolve_batch_backend("auto", 60, 40, d + 1) == "numba"

    def test_kernel_table_covers_both_array_stacks(self):
        from repro.routing import vectorized

        assert routing_kernels("vector") is vectorized
        assert routing_kernels("numba") is numba_kernels
        for name in (
            "batch_propagate_loads",
            "batch_total_loads",
            "batch_propagate_worst_delay",
            "batch_propagate_mean_delay",
        ):
            assert callable(getattr(numba_kernels, name))
        with pytest.raises(ValueError, match="no batch-kernel table"):
            routing_kernels("python")

    def test_cli_rejects_numba_without_dependency(self, monkeypatch, capsys):
        import repro.exp.runner as runner

        monkeypatch.setattr(runner, "numba_available", lambda: False)
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["table2", "--backend", "numba"])
        assert excinfo.value.code == 2
        assert "pip install numba" in capsys.readouterr().err


@pytest.mark.jit
class TestCompiled:
    """End-to-end with actually-compiled kernels (CI jit lane only)."""

    def test_engine_parity_and_warmup(self):
        pytest.importorskip("numba")
        assert numba_kernels.NUMBA_AVAILABLE
        numba_kernels.warmup()
        numba_kernels.warmup()  # idempotent
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(24, 3, g), seed=5
        )
        e_py = RoutingEngine(network, backend="python")
        e_jit = RoutingEngine(network, backend="numba")
        for trial in range(6):
            weights = rng.integers(1, 20, network.num_arcs).astype(
                np.float64
            )
            scenario = random_scenario(network, rng, trial % 3)
            r_py = e_py.route_class(weights, demands, scenario)
            r_jit = e_jit.route_class(weights, demands, scenario)
            np.testing.assert_array_equal(r_py.loads, r_jit.loads)
            assert r_py.undelivered == r_jit.undelivered
            arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
            for mode in ("worst", "mean"):
                np.testing.assert_array_equal(
                    e_py.path_delays(r_py, arc_delays, mode=mode),
                    e_jit.path_delays(r_jit, arc_delays, mode=mode),
                )

    def test_evaluator_sweep_parity_and_pickle(self, tmp_path):
        pytest.importorskip("numba")
        import pickle

        from repro.config import ExecutionParams, OptimizerConfig
        from repro.core.evaluation import DtrEvaluator
        from repro.core.weights import WeightSetting
        from repro.routing.failures import single_link_failures
        from repro.traffic import scale_to_utilization

        rng = np.random.default_rng(31)
        network = powerlaw_topology(24, 3, rng)
        traffic = scale_to_utilization(
            network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
        )
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        failures = list(single_link_failures(network))[:8]
        sweeps = {}
        for backend in ("python", "numba"):
            config = OptimizerConfig(
                execution=ExecutionParams(routing_backend=backend)
            )
            evaluator = DtrEvaluator(network, traffic, config)
            normal = evaluator.evaluate_normal(setting)
            sweeps[backend] = evaluator.evaluate_failures(
                setting, failures, reuse=normal
            )
            # Compiled dispatch is module-global, never pickled: the
            # evaluator itself must survive a round trip (what the
            # parallel workers do) without dragging JIT state along.
            pickle.loads(pickle.dumps(evaluator))
        ref, got = sweeps["python"], sweeps["numba"]
        assert len(ref) == len(got)
        for x, y in zip(ref.evaluations, got.evaluations):
            assert x.cost == y.cost
            np.testing.assert_array_equal(x.loads_delay, y.loads_delay)
