"""Tests for the scenario-axis batch sweep engine (routing layer).

The contract is strict bit-identity: every routing produced by
``route_scenario_batch`` must equal the per-scenario
``route_scenario`` result exactly, the cross-scenario delay kernels
must replay the per-scenario columns exactly, and the planner must
partition every scenario into exactly one bucket.
"""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.core.weights import WeightSetting
from repro.routing.fastpath import PropagationPlan, fast_propagate_worst_delay
from repro.routing.incremental import IncrementalRouter
from repro.routing.sweep import (
    flush_delay_batch,
    group_scenario_budget,
    kernel_cell_budget,
    plan_sweep,
    route_scenario_batch,
)
from repro.routing.vectorized import (
    BatchPlan,
    batch_propagate_worst_delay,
    build_schedule,
)
from repro.scenarios import (
    GaussianSurge,
    Scenario,
    cross,
    k_link_failures,
    node_failures,
    srlg_failures,
)
from repro.routing.failures import NORMAL, single_link_failures
from repro.topology import rand_topology, scale_to_diameter
from repro.traffic import dtr_traffic, scale_to_utilization


@pytest.fixture(scope="module")
def instance():
    gen = np.random.default_rng(3)
    network = scale_to_diameter(rand_topology(14, 4.0, gen), 0.025)
    traffic = scale_to_utilization(
        network, dtr_traffic(14, gen, 1.0), 0.4, "mean"
    )
    return network, traffic


def fresh_router(network, traffic, weights):
    return IncrementalRouter(network, traffic.delay.values, weights)


class TestPlanner:
    def test_every_index_in_exactly_one_bucket(self, instance):
        network, _ = instance
        scenarios = list(
            srlg_failures(network, num_groups=2, group_size=2, seed=1)
            + node_failures(network, nodes=[0, 2])
            + cross(
                k_link_failures(network, k=2, max_scenarios=2, seed=1),
                [GaussianSurge(seed=5)],
            )
        ) + [NORMAL, Scenario()]
        plan = plan_sweep(scenarios, network.num_nodes)
        seen = sorted(
            [i for group in plan.batch_groups for i in group]
            + [i for _, ids in plan.variant_groups for i in ids]
            + list(plan.legacy)
        )
        assert seen == list(range(len(scenarios)))
        assert plan.num_scenarios == len(scenarios)
        # node failures and the normal scenarios stay on the legacy path
        assert len(plan.legacy) == 4
        # the cross product groups under one variant digest
        assert len(plan.variant_groups) == 1
        assert len(plan.variant_groups[0][1]) == 2

    def test_group_budget_bounds_group_size(self, instance):
        network, _ = instance
        failures = list(single_link_failures(network))
        budget = group_scenario_budget(network.num_nodes)
        plan = plan_sweep(failures, network.num_nodes)
        assert all(len(g) <= budget for g in plan.batch_groups)
        # small instance: the whole sweep fits one group
        assert len(plan.batch_groups) == 1

    def test_budgets_scale_down_with_size(self):
        assert group_scenario_budget(1000) < group_scenario_budget(30)
        assert kernel_cell_budget(5000) < kernel_cell_budget(100)
        assert kernel_cell_budget(10**9) >= 64


class TestBatchRoutingParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_per_scenario(self, instance, seed):
        network, traffic = instance
        rng = np.random.default_rng(seed)
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        weights = np.asarray(setting.delay, dtype=np.float64)
        scenarios = [
            s.failure
            for s in (
                srlg_failures(network, num_groups=3, group_size=2, seed=seed)
                + k_link_failures(
                    network, k=2, max_scenarios=4, seed=seed
                )
            )
        ]
        reference = fresh_router(network, traffic, weights)
        expected = [
            reference.route_scenario(s, want_reusable=True)
            for s in scenarios
        ]
        batched = fresh_router(network, traffic, weights)
        got, handoffs = route_scenario_batch(
            batched, scenarios, want_reusable=True
        )
        assert len(got) == len(expected)
        for exp, act in zip(expected, got):
            assert np.array_equal(exp.routing.loads, act.routing.loads)
            assert np.array_equal(exp.routing.dist, act.routing.dist)
            assert np.array_equal(exp.routing.masks, act.routing.masks)
            assert exp.routing.undelivered == act.routing.undelivered
            assert exp.reusable == act.reusable
        # handoff columns name real (scenario, destination) cells
        for handoff in handoffs:
            for i, t in handoff.cells:
                assert 0 <= i < len(scenarios)
                assert 0 <= t < network.num_nodes

    def test_memo_warm_batch_still_identical(self, instance):
        network, traffic = instance
        rng = np.random.default_rng(9)
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        weights = np.asarray(setting.delay, dtype=np.float64)
        scenarios = [
            s.failure
            for s in srlg_failures(
                network, num_groups=4, group_size=2, seed=9
            )
        ]
        router = fresh_router(network, traffic, weights)
        first, _ = route_scenario_batch(router, scenarios)
        second, handoffs = route_scenario_batch(router, scenarios)
        for a, b in zip(first, second):
            assert np.array_equal(a.routing.loads, b.routing.loads)
            assert a.routing.undelivered == b.routing.undelivered
        # warm pass is served from the memo: no kernel batches needed
        assert handoffs == []


class TestDelayRowsKernel:
    def test_per_column_rows_match_python_kernel(self, instance):
        """Columns of different scenarios (distinct arc-delay vectors)
        sharing one batched DP equal the per-scenario python kernel."""
        network, traffic = instance
        rng = np.random.default_rng(4)
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        weights = np.asarray(setting.delay, dtype=np.float64)
        router = fresh_router(network, traffic, weights)
        routing = router.routing
        plan = PropagationPlan.for_network(network)
        batch_plan = BatchPlan.for_network(network)
        num_scenarios = 3
        delays = rng.uniform(0.001, 0.01, (num_scenarios, network.num_arcs))
        dests = routing.destinations
        # every (scenario, destination) pair is one batch column
        rows = np.tile(np.arange(len(dests)), num_scenarios)
        delay_rows = np.repeat(
            np.arange(num_scenarios, dtype=np.intp), len(dests)
        )
        masks = routing.masks[rows]
        dist_cols = routing.dist[:, dests[rows]]
        columns = batch_propagate_worst_delay(
            batch_plan,
            masks,
            dist_cols,
            delays,
            dests[rows],
            delay_rows=delay_rows,
        )
        for j in range(len(rows)):
            t = int(dests[rows[j]])
            expected = fast_propagate_worst_delay(
                plan,
                routing.masks[rows[j]],
                routing.dist[:, t],
                delays[delay_rows[j]].tolist(),
                t,
            )
            assert np.array_equal(columns[:, j], np.asarray(expected))

    def test_schedule_replay_matches_fresh_build(self, instance):
        """A prebuilt schedule (masks/dist omitted) replays identical
        bits — the handed-schedule path of the delay flush."""
        network, traffic = instance
        rng = np.random.default_rng(6)
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        weights = np.asarray(setting.delay, dtype=np.float64)
        router = fresh_router(network, traffic, weights)
        routing = router.routing
        batch_plan = BatchPlan.for_network(network)
        dests = routing.destinations
        delays = rng.uniform(0.001, 0.01, network.num_arcs)
        schedule = build_schedule(
            batch_plan, routing.masks, routing.dist[:, dests]
        )
        fresh = batch_propagate_worst_delay(
            batch_plan, routing.masks, routing.dist[:, dests], delays, dests
        )
        replayed = batch_propagate_worst_delay(
            batch_plan, None, None, delays, dests, schedule=schedule
        )
        assert np.array_equal(fresh, replayed)


class TestFlushDelayBatch:
    def test_flush_fills_pending_and_memo(self, instance):
        """flush_delay_batch equals per-scenario path_delays columns."""
        from repro.routing.engine import RoutingEngine

        network, traffic = instance
        rng = np.random.default_rng(8)
        setting = WeightSetting.random(
            network.num_arcs, OptimizerConfig().weights, rng
        )
        weights = np.asarray(setting.delay, dtype=np.float64)
        scenarios = [
            s.failure
            for s in srlg_failures(
                network, num_groups=3, group_size=2, seed=8
            )
        ]
        router = fresh_router(network, traffic, weights)
        routings, _ = route_scenario_batch(router, scenarios)
        engine = RoutingEngine(network)
        n = network.num_nodes
        tasks = []
        expected = []
        for sr in routings:
            delays = rng.uniform(0.001, 0.01, network.num_arcs)
            out = np.full((n, n), np.nan)
            pending = engine._delay_pending(
                sr.routing, delays, "worst", None, True, out
            )
            tasks.append((sr.routing, delays, out, pending))
            expected.append(
                RoutingEngine(network).path_delays(sr.routing, delays)
            )
        flush_delay_batch(engine, "worst", tasks)
        for (_, _, out, _), exp in zip(tasks, expected):
            assert np.array_equal(out, exp, equal_nan=True)
