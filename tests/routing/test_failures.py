"""Tests for failure-scenario machinery."""

import pytest

from repro.routing.failures import (
    NORMAL,
    FailureModel,
    FailureScenario,
    disabled_arc_mask,
    dual_link_failures,
    single_arc_failures,
    single_failures,
    single_link_failures,
    single_node_failures,
)


class TestFailureScenario:
    def test_normal_is_normal(self):
        assert NORMAL.is_normal

    def test_failed_arcs_deduplicated_sorted(self):
        scenario = FailureScenario(failed_arcs=(3, 1, 3))
        assert scenario.failed_arcs == (1, 3)

    def test_not_normal_with_arcs(self):
        assert not FailureScenario(failed_arcs=(0,)).is_normal

    def test_not_normal_with_nodes(self):
        assert not FailureScenario(
            failed_arcs=(), removed_nodes=(1,)
        ).is_normal


class TestSingleFailures:
    def test_arc_failures_one_per_arc(self, square_network):
        failures = single_arc_failures(square_network)
        assert len(failures) == square_network.num_arcs
        assert failures.model is FailureModel.ARC

    def test_link_failures_one_per_link(self, square_network):
        failures = single_link_failures(square_network)
        assert len(failures) == square_network.num_links
        for scenario in failures:
            assert len(scenario.failed_arcs) == 2
            a, b = scenario.failed_arcs
            assert square_network.reverse_arc[a] == b

    def test_dispatch(self, square_network):
        assert len(single_failures(square_network, FailureModel.ARC)) == 10
        assert len(single_failures(square_network, FailureModel.LINK)) == 5

    def test_restriction_to_arcs(self, square_network):
        failures = single_link_failures(square_network)
        arc = square_network.arc_id(0, 1)
        restricted = failures.restricted_to_arcs([arc])
        assert len(restricted) == 1
        assert arc in restricted[0].failed_arcs

    def test_restriction_empty_when_untouched(self, square_network):
        failures = single_link_failures(square_network)
        assert len(failures.restricted_to_arcs([])) == 0


class TestNodeFailures:
    def test_all_nodes(self, square_network):
        failures = single_node_failures(square_network)
        assert len(failures) == square_network.num_nodes

    def test_node_failure_kills_incident_arcs(self, square_network):
        failures = single_node_failures(square_network, nodes=[0])
        scenario = failures[0]
        assert scenario.removed_nodes == (0,)
        expected = set(square_network.arcs_of_node(0).tolist())
        assert set(scenario.failed_arcs) == expected


class TestDualLinkFailures:
    def test_all_pairs_count(self, square_network):
        failures = dual_link_failures(square_network)
        n = square_network.num_links
        assert len(failures) == n * (n - 1) // 2

    def test_sampling_respects_cap(self, square_network, rng):
        failures = dual_link_failures(
            square_network, max_scenarios=3, rng=rng
        )
        assert len(failures) == 3

    def test_sampling_requires_rng(self, square_network):
        with pytest.raises(ValueError, match="rng"):
            dual_link_failures(square_network, max_scenarios=2)


class TestDisabledMask:
    def test_mask_marks_failed_arcs(self, square_network):
        scenario = FailureScenario(failed_arcs=(0, 3))
        mask = disabled_arc_mask(square_network, scenario)
        assert mask[0] and mask[3]
        assert mask.sum() == 2

    def test_normal_mask_empty(self, square_network):
        mask = disabled_arc_mask(square_network, NORMAL)
        assert not mask.any()
