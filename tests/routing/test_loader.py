"""Tests for ECMP load and delay propagation (reference implementations)."""

import numpy as np
import pytest

from repro.routing.loader import (
    max_arc_value_on_paths,
    propagate_loads,
    propagate_mean_delay,
    propagate_worst_delay,
)
from repro.routing.spf import distance_matrix, shortest_arc_mask


def dag_for(network, weights, t, disabled=None):
    dist = distance_matrix(network, weights, disabled)
    mask = shortest_arc_mask(network, weights, dist[:, t], disabled)
    return dist[:, t], mask


class TestPropagateLoads:
    def test_single_path_load(self, square_network):
        weights = np.ones(square_network.num_arcs)
        weights[square_network.arc_id(0, 2)] = 10
        weights[square_network.arc_id(2, 0)] = 10
        dist_t, mask = dag_for(square_network, weights, 2)
        demand = np.zeros(4)
        demand[0] = 8.0
        loads = np.zeros(square_network.num_arcs)
        lost = propagate_loads(square_network, mask, dist_t, demand, 2, loads)
        assert lost == 0.0
        # 0 -> 2 now splits over 0-1-2 and 0-3-2 (both length 2)
        assert loads[square_network.arc_id(0, 1)] == pytest.approx(4.0)
        assert loads[square_network.arc_id(0, 3)] == pytest.approx(4.0)
        assert loads[square_network.arc_id(1, 2)] == pytest.approx(4.0)
        assert loads[square_network.arc_id(3, 2)] == pytest.approx(4.0)

    def test_ecmp_even_split(self, square_network):
        weights = np.ones(square_network.num_arcs)
        dist_t, mask = dag_for(square_network, weights, 3)
        demand = np.zeros(4)
        demand[1] = 6.0
        loads = np.zeros(square_network.num_arcs)
        propagate_loads(square_network, mask, dist_t, demand, 3, loads)
        assert loads[square_network.arc_id(1, 0)] == pytest.approx(3.0)
        assert loads[square_network.arc_id(1, 2)] == pytest.approx(3.0)

    def test_flow_conservation(self, square_network, rng):
        weights = rng.integers(1, 10, square_network.num_arcs).astype(float)
        t = 2
        dist_t, mask = dag_for(square_network, weights, t)
        demand = rng.uniform(0, 5, 4)
        demand[t] = 0.0
        loads = np.zeros(square_network.num_arcs)
        lost = propagate_loads(
            square_network, mask, dist_t, demand, t, loads
        )
        # everything that was sent arrives at t
        into_t = loads[square_network.in_arcs[t]].sum()
        out_of_t = loads[square_network.out_arcs[t]].sum()
        assert into_t - out_of_t == pytest.approx(demand.sum() - lost)

    def test_disconnected_demand_counted(self, square_network):
        weights = np.ones(square_network.num_arcs)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist_t, mask = dag_for(square_network, weights, 3, disabled)
        demand = np.zeros(4)
        demand[0] = 5.0
        loads = np.zeros(square_network.num_arcs)
        lost = propagate_loads(
            square_network, mask, dist_t, demand, 3, loads
        )
        assert lost == pytest.approx(5.0)
        assert loads.sum() == 0.0


class TestDelayPropagation:
    def test_worst_delay_single_path(self, square_network):
        weights = np.ones(square_network.num_arcs)
        dist_t, mask = dag_for(square_network, weights, 3)
        arc_delays = np.full(square_network.num_arcs, 0.002)
        delay = propagate_worst_delay(
            square_network, mask, dist_t, arc_delays, 3
        )
        assert delay[3] == 0.0
        assert delay[0] == pytest.approx(0.002)
        assert delay[1] == pytest.approx(0.004)

    def test_worst_takes_max_over_ecmp(self, square_network):
        weights = np.ones(square_network.num_arcs)
        dist_t, mask = dag_for(square_network, weights, 3)
        arc_delays = np.full(square_network.num_arcs, 0.001)
        # make the 1 -> 2 -> 3 branch slower
        arc_delays[square_network.arc_id(1, 2)] = 0.010
        delay = propagate_worst_delay(
            square_network, mask, dist_t, arc_delays, 3
        )
        assert delay[1] == pytest.approx(0.011)

    def test_mean_is_between_min_and_max(self, square_network, rng):
        weights = np.ones(square_network.num_arcs)
        dist_t, mask = dag_for(square_network, weights, 3)
        arc_delays = rng.uniform(0.001, 0.01, square_network.num_arcs)
        worst = propagate_worst_delay(
            square_network, mask, dist_t, arc_delays, 3
        )
        mean = propagate_mean_delay(
            square_network, mask, dist_t, arc_delays, 3
        )
        for node in range(4):
            if np.isfinite(worst[node]):
                assert mean[node] <= worst[node] + 1e-12

    def test_disconnected_node_inf(self, square_network):
        weights = np.ones(square_network.num_arcs)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist_t, mask = dag_for(square_network, weights, 3, disabled)
        arc_delays = np.full(square_network.num_arcs, 0.001)
        delay = propagate_worst_delay(
            square_network, mask, dist_t, arc_delays, 3
        )
        assert np.isinf(delay[0])


class TestMaxArcValueOnPaths:
    def test_picks_max_utilization_on_path(self, square_network):
        weights = np.ones(square_network.num_arcs)
        dist_t, mask = dag_for(square_network, weights, 3)
        values = np.zeros(square_network.num_arcs)
        values[square_network.arc_id(0, 3)] = 0.9
        values[square_network.arc_id(1, 0)] = 0.1
        worst = max_arc_value_on_paths(
            square_network, mask, dist_t, values, 3
        )
        assert worst[0] == pytest.approx(0.9)
        # node 1 reaches 3 via 0 (max 0.9) or via 2 (max 0.0) -> worst is 0.9
        assert worst[1] == pytest.approx(0.9)
