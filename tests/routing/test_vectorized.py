"""Cross-backend parity: the vector batch kernels vs the python kernels.

The vector backend must be a pure execution knob: on integer-weight
instances every routing artifact (distances, masks, loads, undelivered,
path delays) is bit-identical to the python backend's, across normal
conditions, arc failures and node removals.  These tests pin that
property-style on seeded PLTopo and ISP instances, at kernel level and
at engine level, including a >=100-node instance (marked slow).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.routing.backend import (
    VALID_BACKENDS,
    VECTOR_CROSSOVER_WORK,
    VECTOR_PROPAGATION_CROSSOVER_WORK,
    resolve_backend,
    validate_backend,
)
from repro.routing.engine import RoutingEngine
from repro.routing.failures import NORMAL, FailureScenario
from repro.routing.fastpath import (
    PropagationPlan,
    fast_propagate_loads,
    fast_propagate_mean_delay,
    fast_propagate_worst_delay,
)
from repro.routing.incremental import IncrementalRouter
from repro.routing.vectorized import (
    BatchPlan,
    batch_propagate_loads,
    batch_propagate_mean_delay,
    batch_propagate_worst_delay,
    batch_total_loads,
    build_schedule,
)
from repro.topology import isp_topology, powerlaw_topology, rand_topology
from repro.traffic import dtr_traffic


def make_instance(build, seed: int):
    rng = np.random.default_rng(seed)
    network = build(rng)
    demands = dtr_traffic(network.num_nodes, rng, 1.0).delay.values
    return network, demands, rng


def random_scenario(network, rng, kind: int) -> FailureScenario:
    if kind == 0:
        return NORMAL
    if kind == 1:
        arcs = rng.integers(0, network.num_arcs, size=2)
        return FailureScenario(failed_arcs=tuple(int(a) for a in arcs))
    node = int(rng.integers(0, network.num_nodes))
    return FailureScenario(
        failed_arcs=tuple(int(a) for a in network.arcs_of_node(node)),
        removed_nodes=(node,),
    )


INSTANCES = [
    pytest.param(lambda rng: powerlaw_topology(24, 3, rng), id="pl24"),
    pytest.param(lambda rng: rand_topology(20, 4.5, rng), id="rand20"),
    pytest.param(lambda rng: isp_topology(), id="isp"),
]


class TestBackendSelection:
    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown routing backend"):
            validate_backend("numpy")

    def test_fixed_backends_pass_through(self):
        for backend in ("python", "vector"):
            assert resolve_backend(backend, 10, 40, 10) == backend
        # "numba" is also valid but soft: its pass-through (and its
        # rejection when numba is absent) is pinned by
        # tests/routing/test_numba_kernels.py.
        assert set(VALID_BACKENDS) == {"auto", "python", "vector", "numba"}

    def test_auto_uses_work_measure(self):
        # work = destinations * (nodes + arcs)
        assert resolve_backend("auto", 400, 2400, 400) == "vector"
        assert resolve_backend("auto", 16, 70, 16) == "python"
        just_below = VECTOR_CROSSOVER_WORK // 100 - 1
        assert resolve_backend("auto", 60, 40, just_below) == "python"
        assert resolve_backend("auto", 60, 40, just_below + 2) == "vector"

    def test_propagate_crossover_is_lower(self):
        assert VECTOR_PROPAGATION_CROSSOVER_WORK < VECTOR_CROSSOVER_WORK
        d = VECTOR_PROPAGATION_CROSSOVER_WORK // 100
        assert (
            resolve_backend("auto", 60, 40, d + 1, kind="propagate")
            == "vector"
        )
        assert resolve_backend("auto", 60, 40, d + 1, kind="route") == "python"

    def test_engine_rejects_unknown_backend(self, square_network):
        with pytest.raises(ValueError, match="unknown routing backend"):
            RoutingEngine(square_network, backend="fast")


class TestKernelParity:
    """Batch kernels vs per-destination python kernels, bit for bit."""

    @pytest.mark.parametrize("build", INSTANCES)
    def test_loads_and_delays(self, build):
        network, demands, rng = make_instance(build, seed=101)
        engine = RoutingEngine(network, backend="python")
        plan = PropagationPlan.for_network(network)
        batch_plan = BatchPlan.for_network(network)
        for trial in range(4):
            weights = rng.integers(1, 20, network.num_arcs).astype(
                np.float64
            )
            routing = engine.route_class(weights, demands)
            dests = routing.destinations
            cols = routing.dist[:, dests]
            contribs, und = batch_propagate_loads(
                batch_plan,
                routing.masks,
                cols,
                demands[:, dests],
                dests,
            )
            loads_ref = [0.0] * network.num_arcs
            for row, t in enumerate(dests):
                contrib_ref = [0.0] * network.num_arcs
                und_ref = fast_propagate_loads(
                    plan,
                    routing.masks[row],
                    cols[:, row],
                    demands[:, int(t)],
                    int(t),
                    contrib_ref,
                )
                np.testing.assert_array_equal(
                    contribs[row], np.asarray(contrib_ref)
                )
                assert float(und[row]) == und_ref
                for a, share in enumerate(contrib_ref):
                    loads_ref[a] += share

            total, und2 = batch_total_loads(
                batch_plan,
                routing.masks,
                cols,
                demands[:, dests],
                dests,
            )
            np.testing.assert_array_equal(total, np.asarray(loads_ref))
            np.testing.assert_array_equal(und2, und)

            arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
            delays_list = arc_delays.tolist()
            worst = batch_propagate_worst_delay(
                batch_plan, routing.masks, cols, arc_delays, dests
            )
            mean = batch_propagate_mean_delay(
                batch_plan, routing.masks, cols, arc_delays, dests
            )
            for row, t in enumerate(dests):
                np.testing.assert_array_equal(
                    worst[:, row],
                    np.asarray(
                        fast_propagate_worst_delay(
                            plan,
                            routing.masks[row],
                            cols[:, row],
                            delays_list,
                            int(t),
                        )
                    ),
                )
                np.testing.assert_array_equal(
                    mean[:, row],
                    np.asarray(
                        fast_propagate_mean_delay(
                            plan,
                            routing.masks[row],
                            cols[:, row],
                            delays_list,
                            int(t),
                        )
                    ),
                )

    def test_prebuilt_schedule_matches(self):
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(24, 3, g), seed=7
        )
        engine = RoutingEngine(network, backend="python")
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        routing = engine.route_class(weights, demands)
        dests = routing.destinations
        cols = routing.dist[:, dests]
        batch_plan = BatchPlan.for_network(network)
        schedule = build_schedule(batch_plan, routing.masks, cols)
        without = batch_propagate_loads(
            batch_plan, routing.masks, cols, demands[:, dests], dests
        )
        with_sched = batch_propagate_loads(
            batch_plan,
            routing.masks,
            cols,
            demands[:, dests],
            dests,
            schedule=schedule,
        )
        np.testing.assert_array_equal(without[0], with_sched[0])
        np.testing.assert_array_equal(without[1], with_sched[1])


class TestEngineParity:
    """route_class + path_delays across backends, every scenario kind."""

    @pytest.mark.parametrize("build", INSTANCES)
    def test_integer_weights_bit_identical(self, build):
        network, demands, rng = make_instance(build, seed=3)
        e_py = RoutingEngine(network, backend="python")
        e_vec = RoutingEngine(network, backend="vector")
        for trial in range(9):
            weights = rng.integers(1, 20, network.num_arcs).astype(
                np.float64
            )
            scenario = random_scenario(network, rng, trial % 3)
            r_py = e_py.route_class(weights, demands, scenario)
            r_vec = e_vec.route_class(weights, demands, scenario)
            np.testing.assert_array_equal(r_py.dist, r_vec.dist)
            np.testing.assert_array_equal(r_py.masks, r_vec.masks)
            np.testing.assert_array_equal(r_py.loads, r_vec.loads)
            assert r_py.undelivered == r_vec.undelivered
            arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
            for mode in ("worst", "mean"):
                np.testing.assert_array_equal(
                    e_py.path_delays(r_py, arc_delays, mode=mode),
                    e_vec.path_delays(r_vec, arc_delays, mode=mode),
                )

    def test_float_weights_within_tolerance(self):
        """Float weights: stacks agree to SPF tolerance, exactly on flow."""
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(24, 3, g), seed=11
        )
        e_py = RoutingEngine(network, backend="python")
        e_vec = RoutingEngine(network, backend="vector")
        for _ in range(4):
            weights = rng.uniform(1.0, 20.0, network.num_arcs)
            r_py = e_py.route_class(weights, demands)
            r_vec = e_vec.route_class(weights, demands)
            dests = r_py.destinations
            np.testing.assert_allclose(
                r_py.dist[:, dests], r_vec.dist[:, dests], atol=1e-9
            )
            np.testing.assert_allclose(
                r_py.loads, r_vec.loads, rtol=1e-9
            )
            assert r_py.undelivered == r_vec.undelivered

    def test_auto_matches_fixed_backends(self):
        """auto picks one of the two stacks, never a third behavior."""
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(30, 3, g), seed=5
        )
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        routings = {
            backend: RoutingEngine(network, backend=backend).route_class(
                weights, demands
            )
            for backend in ("python", "vector", "auto")
        }
        np.testing.assert_array_equal(
            routings["auto"].loads, routings["python"].loads
        )
        np.testing.assert_array_equal(
            routings["auto"].loads, routings["vector"].loads
        )


class TestIncrementalVectorParity:
    """IncrementalRouter under the vector backend == scratch python."""

    @pytest.mark.parametrize("backend", ["vector", "auto"])
    def test_moves_and_failures(self, backend):
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(30, 3, g), seed=23
        )
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        router = IncrementalRouter(
            network, demands, weights, backend=backend
        )
        engine = RoutingEngine(network, backend="python")
        current = weights.copy()
        for step in range(25):
            if step % 5 == 4:
                scenario = random_scenario(network, rng, 1 + step % 2)
                got = router.route_scenario(scenario).routing
                expected = engine.route_class(current, demands, scenario)
            else:
                arc = int(rng.integers(0, network.num_arcs))
                new = float(rng.integers(1, 20))
                router.set_arc_weight(arc, new)
                current[arc] = new
                got = router.routing
                expected = engine.route_class(current, demands)
            np.testing.assert_array_equal(expected.loads, got.loads)
            np.testing.assert_array_equal(expected.masks, got.masks)
            assert expected.undelivered == got.undelivered


@pytest.mark.slow
class TestLargeInstanceParity:
    """>=100-node PLTopo: the sizes the vector backend exists for."""

    def test_pl120_bit_identical(self):
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(120, 3, g), seed=31
        )
        e_py = RoutingEngine(network, backend="python")
        e_vec = RoutingEngine(network, backend="vector")
        for trial in range(3):
            weights = rng.integers(1, 20, network.num_arcs).astype(
                np.float64
            )
            scenario = random_scenario(network, rng, trial)
            r_py = e_py.route_class(weights, demands, scenario)
            r_vec = e_vec.route_class(weights, demands, scenario)
            np.testing.assert_array_equal(r_py.loads, r_vec.loads)
            np.testing.assert_array_equal(r_py.masks, r_vec.masks)
            assert r_py.undelivered == r_vec.undelivered
            arc_delays = rng.uniform(1e-3, 1e-2, network.num_arcs)
            np.testing.assert_array_equal(
                e_py.path_delays(r_py, arc_delays),
                e_vec.path_delays(r_vec, arc_delays),
            )

    def test_pl120_incremental_failures(self):
        network, demands, rng = make_instance(
            lambda g: powerlaw_topology(120, 3, g), seed=37
        )
        weights = rng.integers(1, 20, network.num_arcs).astype(np.float64)
        router = IncrementalRouter(
            network, demands, weights, backend="vector"
        )
        engine = RoutingEngine(network, backend="python")
        for kind in (1, 2, 1):
            scenario = random_scenario(network, rng, kind)
            got = router.route_scenario(scenario).routing
            expected = engine.route_class(weights, demands, scenario)
            np.testing.assert_array_equal(expected.loads, got.loads)
            assert expected.undelivered == got.undelivered
