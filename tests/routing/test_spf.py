"""Tests for shortest-path computations."""

import numpy as np
import pytest

from repro.routing.spf import (
    distance_columns,
    distance_matrix,
    extract_one_path,
    path_counts,
    shortest_arc_mask,
)


def uniform_weights(network) -> np.ndarray:
    return np.ones(network.num_arcs)


class TestDistanceMatrix:
    def test_hop_counts_on_square(self, square_network):
        dist = distance_matrix(square_network, uniform_weights(square_network))
        assert dist[0, 0] == 0
        assert dist[0, 1] == 1
        assert dist[0, 2] == 1  # via diagonal
        assert dist[1, 3] == 2

    def test_weighted_shortest_path(self, square_network):
        weights = uniform_weights(square_network)
        diag = square_network.arc_id(0, 2)
        weights[diag] = 5  # make the diagonal unattractive
        dist = distance_matrix(square_network, weights)
        assert dist[0, 2] == 2  # now around the ring

    def test_disabled_arcs_excluded(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        disabled[square_network.arc_id(0, 1)] = True
        dist = distance_matrix(square_network, weights, disabled)
        assert dist[0, 1] == 2  # 0 -> 2 -> 1 via diagonal

    def test_disconnection_is_inf(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        # node 3 only connects via 2-3 and 3-0
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist = distance_matrix(square_network, weights, disabled)
        assert np.isinf(dist[0, 3])
        assert np.isinf(dist[3, 0])

    def test_weight_below_one_rejected(self, square_network):
        weights = uniform_weights(square_network)
        weights[0] = 0.5
        with pytest.raises(ValueError, match=">= 1"):
            distance_matrix(square_network, weights)

    def test_wrong_shape_rejected(self, square_network):
        with pytest.raises(ValueError, match="one entry per arc"):
            distance_matrix(square_network, np.ones(3))

    def test_validate_false_skips_checks(self, square_network):
        weights = uniform_weights(square_network)
        weights[0] = 0.5  # would be rejected with validation on
        dist = distance_matrix(square_network, weights, validate=False)
        assert dist.shape == (4, 4)


class TestDistanceColumns:
    def test_columns_match_all_pairs(self, square_network):
        weights = uniform_weights(square_network)
        weights[square_network.arc_id(0, 2)] = 5
        full = distance_matrix(square_network, weights)
        destinations = np.array([1, 3])
        cols = distance_columns(square_network, weights, destinations)
        np.testing.assert_array_equal(cols, full[:, destinations])

    def test_destination_mode_fills_inf(self, square_network):
        weights = uniform_weights(square_network)
        destinations = np.array([2])
        dist = distance_matrix(
            square_network, weights, destinations=destinations
        )
        np.testing.assert_array_equal(
            dist[:, 2], distance_matrix(square_network, weights)[:, 2]
        )
        assert np.isinf(dist[:, [0, 1, 3]]).all()

    def test_empty_destinations(self, square_network):
        weights = uniform_weights(square_network)
        cols = distance_columns(
            square_network, weights, np.array([], dtype=np.intp)
        )
        assert cols.shape == (4, 0)
        dist = distance_matrix(
            square_network, weights, destinations=np.array([], dtype=int)
        )
        assert np.isinf(dist).all()

    def test_disabled_arcs_respected(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        disabled[square_network.arc_id(0, 1)] = True
        cols = distance_columns(
            square_network, weights, np.array([1]), disabled
        )
        full = distance_matrix(square_network, weights, disabled)
        np.testing.assert_array_equal(cols[:, 0], full[:, 1])

    def test_python_and_scipy_paths_agree(self):
        """Small batches (heap Dijkstra) == large batches (scipy)."""
        from repro.topology import rand_topology

        gen = np.random.default_rng(17)
        network = rand_topology(20, 4.0, gen)
        weights = gen.integers(1, 18, network.num_arcs).astype(np.float64)
        all_dests = np.arange(20)
        via_scipy = distance_columns(network, weights, all_dests)
        for t in range(20):
            single = distance_columns(network, weights, np.array([t]))
            np.testing.assert_array_equal(single[:, 0], via_scipy[:, t])

    def test_float_weight_small_batch_stays_on_fast_path(self, monkeypatch):
        """Float weights no longer bail out of the heap fast path.

        A small batch must not silently divert to scipy just because the
        weights are non-integral: scipy's Dijkstra is made to explode, so
        any fallback would fail the test, and the heap columns are pinned
        against the full matrix within the SPF tolerance.
        """
        from repro.routing import spf
        from repro.topology import rand_topology

        gen = np.random.default_rng(29)
        network = rand_topology(20, 4.0, gen)
        weights = gen.uniform(1.0, 18.0, network.num_arcs)
        full = distance_matrix(network, weights)

        def boom(*args, **kwargs):
            raise AssertionError(
                "scipy path taken for a small float-weight batch"
            )

        monkeypatch.setattr(spf, "dijkstra", boom)
        destinations = np.array([2, 7, 11])
        cols = distance_columns(network, weights, destinations)
        np.testing.assert_allclose(
            cols, full[:, destinations], atol=1e-9
        )

    def test_backend_selects_dijkstra_implementation(self):
        """backend= pins the implementation regardless of batch size."""
        from repro.topology import rand_topology

        gen = np.random.default_rng(31)
        network = rand_topology(20, 4.0, gen)
        weights = gen.integers(1, 18, network.num_arcs).astype(np.float64)
        all_dests = np.arange(20)
        via_auto = distance_columns(network, weights, all_dests)
        via_python = distance_columns(
            network, weights, all_dests, backend="python"
        )
        via_vector = distance_columns(
            network, weights, np.array([3]), backend="vector"
        )
        np.testing.assert_array_equal(via_python, via_auto)
        np.testing.assert_array_equal(via_vector[:, 0], via_auto[:, 3])


class TestShortestArcMask:
    def test_ecmp_ties_both_on_dag(self, square_network):
        # With unit weights, 1 -> 3 has two shortest paths (via 0 and 2).
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        assert mask[square_network.arc_id(1, 0)]
        assert mask[square_network.arc_id(1, 2)]
        assert mask[square_network.arc_id(0, 3)]
        assert mask[square_network.arc_id(2, 3)]

    def test_non_shortest_arc_excluded(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 1])
        # going 3 -> 2 -> 1 and 3 -> 0 -> 1 are both shortest; 2 -> 3 is not
        assert not mask[square_network.arc_id(2, 3)]

    def test_disabled_arc_never_on_dag(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        disabled[square_network.arc_id(0, 1)] = True
        dist = distance_matrix(square_network, weights, disabled)
        mask = shortest_arc_mask(
            square_network, weights, dist[:, 1], disabled
        )
        assert not mask[square_network.arc_id(0, 1)]


class TestPathCounts:
    def test_two_ecmp_paths(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        counts = path_counts(square_network, mask, dist[:, 3], 3)
        assert counts[1] == 2  # via 0 and via 2
        assert counts[0] == 1
        assert counts[3] == 1


class TestExtractOnePath:
    def test_simple_path(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        path = extract_one_path(square_network, mask, dist[:, 3], 1, 3)
        assert path[0] == 1
        assert path[-1] == 3
        assert len(path) == 3

    def test_unreachable_raises(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist = distance_matrix(square_network, weights, disabled)
        mask = shortest_arc_mask(
            square_network, weights, dist[:, 3], disabled
        )
        with pytest.raises(ValueError, match="cannot reach"):
            extract_one_path(square_network, mask, dist[:, 3], 0, 3)
