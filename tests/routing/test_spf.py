"""Tests for shortest-path computations."""

import numpy as np
import pytest

from repro.routing.spf import (
    distance_matrix,
    extract_one_path,
    path_counts,
    shortest_arc_mask,
)


def uniform_weights(network) -> np.ndarray:
    return np.ones(network.num_arcs)


class TestDistanceMatrix:
    def test_hop_counts_on_square(self, square_network):
        dist = distance_matrix(square_network, uniform_weights(square_network))
        assert dist[0, 0] == 0
        assert dist[0, 1] == 1
        assert dist[0, 2] == 1  # via diagonal
        assert dist[1, 3] == 2

    def test_weighted_shortest_path(self, square_network):
        weights = uniform_weights(square_network)
        diag = square_network.arc_id(0, 2)
        weights[diag] = 5  # make the diagonal unattractive
        dist = distance_matrix(square_network, weights)
        assert dist[0, 2] == 2  # now around the ring

    def test_disabled_arcs_excluded(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        disabled[square_network.arc_id(0, 1)] = True
        dist = distance_matrix(square_network, weights, disabled)
        assert dist[0, 1] == 2  # 0 -> 2 -> 1 via diagonal

    def test_disconnection_is_inf(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        # node 3 only connects via 2-3 and 3-0
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist = distance_matrix(square_network, weights, disabled)
        assert np.isinf(dist[0, 3])
        assert np.isinf(dist[3, 0])

    def test_weight_below_one_rejected(self, square_network):
        weights = uniform_weights(square_network)
        weights[0] = 0.5
        with pytest.raises(ValueError, match=">= 1"):
            distance_matrix(square_network, weights)

    def test_wrong_shape_rejected(self, square_network):
        with pytest.raises(ValueError, match="one entry per arc"):
            distance_matrix(square_network, np.ones(3))


class TestShortestArcMask:
    def test_ecmp_ties_both_on_dag(self, square_network):
        # With unit weights, 1 -> 3 has two shortest paths (via 0 and 2).
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        assert mask[square_network.arc_id(1, 0)]
        assert mask[square_network.arc_id(1, 2)]
        assert mask[square_network.arc_id(0, 3)]
        assert mask[square_network.arc_id(2, 3)]

    def test_non_shortest_arc_excluded(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 1])
        # going 3 -> 2 -> 1 and 3 -> 0 -> 1 are both shortest; 2 -> 3 is not
        assert not mask[square_network.arc_id(2, 3)]

    def test_disabled_arc_never_on_dag(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        disabled[square_network.arc_id(0, 1)] = True
        dist = distance_matrix(square_network, weights, disabled)
        mask = shortest_arc_mask(
            square_network, weights, dist[:, 1], disabled
        )
        assert not mask[square_network.arc_id(0, 1)]


class TestPathCounts:
    def test_two_ecmp_paths(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        counts = path_counts(square_network, mask, dist[:, 3], 3)
        assert counts[1] == 2  # via 0 and via 2
        assert counts[0] == 1
        assert counts[3] == 1


class TestExtractOnePath:
    def test_simple_path(self, square_network):
        weights = uniform_weights(square_network)
        dist = distance_matrix(square_network, weights)
        mask = shortest_arc_mask(square_network, weights, dist[:, 3])
        path = extract_one_path(square_network, mask, dist[:, 3], 1, 3)
        assert path[0] == 1
        assert path[-1] == 3
        assert len(path) == 3

    def test_unreachable_raises(self, square_network):
        weights = uniform_weights(square_network)
        disabled = np.zeros(square_network.num_arcs, dtype=bool)
        for u, v in [(2, 3), (3, 2), (3, 0), (0, 3)]:
            disabled[square_network.arc_id(u, v)] = True
        dist = distance_matrix(square_network, weights, disabled)
        mask = shortest_arc_mask(
            square_network, weights, dist[:, 3], disabled
        )
        with pytest.raises(ValueError, match="cannot reach"):
            extract_one_path(square_network, mask, dist[:, 3], 0, 3)
