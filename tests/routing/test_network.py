"""Tests for the Network model."""

import networkx as nx
import numpy as np
import pytest

from repro.routing.arcs import Arc
from repro.routing.network import Network


def line_network() -> Network:
    """0 <-> 1 <-> 2 line."""
    arcs = []
    for u, v in [(0, 1), (1, 2)]:
        arcs.append(Arc(u, v, 1e9, 0.001))
        arcs.append(Arc(v, u, 1e9, 0.001))
    return Network(3, arcs, name="line")


class TestNetworkBasics:
    def test_counts(self, square_network):
        assert square_network.num_nodes == 4
        assert square_network.num_arcs == 10
        assert square_network.num_links == 5

    def test_mean_degree(self, square_network):
        assert square_network.mean_degree == pytest.approx(2.5)

    def test_arc_id_lookup(self, square_network):
        arc_id = square_network.arc_id(0, 1)
        assert square_network.arcs[arc_id].endpoints == (0, 1)

    def test_arc_id_missing_raises(self, square_network):
        with pytest.raises(KeyError):
            square_network.arc_id(1, 3)

    def test_has_arc(self, square_network):
        assert square_network.has_arc(0, 2)
        assert not square_network.has_arc(1, 3)

    def test_reverse_arc_mapping(self, square_network):
        for arc_id in range(square_network.num_arcs):
            rev = int(square_network.reverse_arc[arc_id])
            assert rev >= 0
            a, b = square_network.arcs[arc_id].endpoints
            assert square_network.arcs[rev].endpoints == (b, a)

    def test_arcs_of_node(self, square_network):
        incident = square_network.arcs_of_node(0)
        endpoints = {square_network.arcs[int(a)].endpoints for a in incident}
        # node 0 touches 1, 2 (diagonal) and 3
        assert all(0 in e for e in endpoints)
        assert len(incident) == 6

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError, match="two nodes"):
            Network(1, [])

    def test_positions_shape_checked(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(1, 0, 1e9, 0.001)]
        with pytest.raises(ValueError, match="positions"):
            Network(2, arcs, positions=np.zeros((3, 2)))


class TestNetworkConversions:
    def test_to_networkx_attrs(self, square_network):
        graph = square_network.to_networkx()
        assert graph.number_of_edges() == square_network.num_arcs
        assert graph[0][1]["capacity"] == 100e6

    def test_from_networkx_undirected(self):
        graph = nx.cycle_graph(4)
        net = Network.from_networkx(graph, capacity=1e9, prop_delay=0.002)
        assert net.num_arcs == 8
        assert np.all(net.capacity == 1e9)

    def test_from_networkx_attribute_priority(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, capacity=5e8, prop_delay=0.004)
        graph.add_edge(1, 2)
        net = Network.from_networkx(graph, capacity=1e9, prop_delay=0.001)
        assert net.capacity[net.arc_id(0, 1)] == 5e8
        assert net.capacity[net.arc_id(1, 2)] == 1e9

    def test_round_trip(self, square_network):
        back = Network.from_networkx(square_network.to_networkx())
        assert back.num_nodes == square_network.num_nodes
        assert back.num_arcs == square_network.num_arcs


class TestNetworkStructure:
    def test_strong_connectivity(self, square_network):
        assert square_network.is_strongly_connected()

    def test_line_survives_nothing(self):
        net = line_network()
        assert not net.survives_arc_failures([net.arc_id(0, 1)])

    def test_square_survives_single_link(self, square_network):
        pair = square_network.link_groups[0]
        assert square_network.survives_arc_failures(list(pair))

    def test_with_prop_delays(self, square_network):
        new = square_network.with_prop_delays(
            np.full(square_network.num_arcs, 0.42)
        )
        assert np.all(new.prop_delay == 0.42)
        assert new.num_arcs == square_network.num_arcs

    def test_with_capacities(self, square_network):
        new = square_network.with_capacities(
            np.full(square_network.num_arcs, 7e7)
        )
        assert np.all(new.capacity == 7e7)

    def test_with_prop_delays_shape_checked(self, square_network):
        with pytest.raises(ValueError, match="per arc"):
            square_network.with_prop_delays(np.ones(3))
