"""Tests for arc primitives."""

import numpy as np
import pytest

from repro.routing.arcs import (
    Arc,
    arcs_to_arrays,
    build_adjacency,
    pair_arcs,
    undirected_pairs,
    validate_arcs,
)


class TestArc:
    def test_basic_fields(self):
        arc = Arc(0, 1, 1e9, 0.005)
        assert arc.endpoints == (0, 1)
        assert arc.capacity == 1e9
        assert arc.prop_delay == 0.005

    def test_reversed_swaps_endpoints(self):
        arc = Arc(2, 5, 1e8, 0.01)
        rev = arc.reversed()
        assert rev.endpoints == (5, 2)
        assert rev.capacity == arc.capacity
        assert rev.prop_delay == arc.prop_delay

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Arc(3, 3, 1e9, 0.001)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Arc(0, 1, 0.0, 0.001)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Arc(0, 1, 1e9, -0.001)


class TestArcsToArrays:
    def test_round_trip_values(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(1, 2, 2e9, 0.002)]
        src, dst, cap, delay = arcs_to_arrays(arcs)
        assert src.tolist() == [0, 1]
        assert dst.tolist() == [1, 2]
        assert cap.tolist() == [1e9, 2e9]
        assert delay.tolist() == [0.001, 0.002]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one arc"):
            arcs_to_arrays([])


class TestPairArcs:
    def test_bidirectional_pairing(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(1, 0, 1e9, 0.001)]
        rev = pair_arcs(arcs)
        assert rev.tolist() == [1, 0]

    def test_one_way_arc_gets_minus_one(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(1, 2, 1e9, 0.001)]
        rev = pair_arcs(arcs)
        assert rev.tolist() == [-1, -1]

    def test_parallel_arcs_rejected(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(0, 1, 2e9, 0.002)]
        with pytest.raises(ValueError, match="parallel"):
            pair_arcs(arcs)


class TestUndirectedPairs:
    def test_pairs_and_singletons(self):
        arcs = [
            Arc(0, 1, 1e9, 0.001),
            Arc(1, 0, 1e9, 0.001),
            Arc(1, 2, 1e9, 0.001),
        ]
        groups = undirected_pairs(arcs)
        assert (0, 1) in groups
        assert (2,) in groups

    def test_groups_cover_all_arcs_once(self):
        arcs = [
            Arc(0, 1, 1e9, 0.001),
            Arc(1, 0, 1e9, 0.001),
            Arc(2, 0, 1e9, 0.001),
            Arc(0, 2, 1e9, 0.001),
        ]
        groups = undirected_pairs(arcs)
        flat = [a for g in groups for a in g]
        assert sorted(flat) == [0, 1, 2, 3]


class TestBuildAdjacency:
    def test_out_and_in_lists(self):
        src = np.asarray([0, 1, 1])
        dst = np.asarray([1, 0, 2])
        out_arcs, in_arcs = build_adjacency(3, src, dst)
        assert out_arcs[0].tolist() == [0]
        assert out_arcs[1].tolist() == [1, 2]
        assert in_arcs[2].tolist() == [2]
        assert in_arcs[0].tolist() == [1]

    def test_isolated_node_has_empty_lists(self):
        out_arcs, in_arcs = build_adjacency(
            3, np.asarray([0]), np.asarray([1])
        )
        assert out_arcs[2].size == 0
        assert in_arcs[2].size == 0


class TestValidateArcs:
    def test_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="outside"):
            validate_arcs(2, [Arc(0, 2, 1e9, 0.001)])

    def test_duplicate_arc(self):
        arcs = [Arc(0, 1, 1e9, 0.001), Arc(0, 1, 1e9, 0.002)]
        with pytest.raises(ValueError, match="duplicate"):
            validate_arcs(2, arcs)

    def test_valid_arcs_pass(self):
        validate_arcs(3, [Arc(0, 1, 1e9, 0.001), Arc(1, 0, 1e9, 0.001)])
