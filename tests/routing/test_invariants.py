"""Network-level property tests: invariants of the routing substrate.

These hold for *any* topology, weight setting and demand matrix:

* flow conservation: demand delivered to each destination equals demand
  sourced minus disconnected volume;
* load positivity and boundedness: total arc load never exceeds total
  demand volume;
* path delays dominate propagation-only delays;
* removing a non-used arc never changes loads (the evaluator shortcut's
  foundation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.engine import RoutingEngine
from repro.routing.failures import FailureScenario
from repro.topology import rand_topology


@st.composite
def engine_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    num_nodes = draw(st.integers(8, 14))
    gen = np.random.default_rng(seed)
    network = rand_topology(num_nodes, 4.0, gen, two_edge_connected=False)
    weights = gen.integers(1, 15, network.num_arcs).astype(float)
    demands = gen.uniform(0.0, 5.0, size=(num_nodes, num_nodes))
    np.fill_diagonal(demands, 0.0)
    # sparsify some demands so zero-demand destinations occur
    mask = gen.uniform(size=demands.shape) < 0.3
    demands[mask] = 0.0
    return network, weights, demands


@settings(max_examples=25, deadline=None)
@given(case=engine_cases())
def test_flow_conservation_per_destination(case):
    network, weights, demands = case
    engine = RoutingEngine(network)
    routing = engine.route_class(weights, demands)
    if routing.undelivered > 0:
        # disconnected sources make per-node accounting ambiguous
        return
    # per-node conservation on aggregated loads: net inflow equals
    # demand terminating at the node minus demand it originates
    for node in range(network.num_nodes):
        inflow = routing.loads[network.in_arcs[node]].sum()
        outflow = routing.loads[network.out_arcs[node]].sum()
        terminated = demands[:, node].sum()
        sourced = demands[node, :].sum()
        assert inflow - outflow == pytest.approx(
            terminated - sourced, rel=1e-9, abs=1e-6
        )


@settings(max_examples=25, deadline=None)
@given(case=engine_cases())
def test_loads_bounded_by_demand_times_hops(case):
    network, weights, demands = case
    engine = RoutingEngine(network)
    routing = engine.route_class(weights, demands)
    assert np.all(routing.loads >= -1e-12)
    # any single arc can carry at most the total demand volume
    assert routing.loads.max() <= demands.sum() + 1e-6


@settings(max_examples=20, deadline=None)
@given(case=engine_cases())
def test_path_delay_dominates_propagation(case):
    network, weights, demands = case
    engine = RoutingEngine(network)
    routing = engine.route_class(weights, demands)
    prop = engine.path_delays(routing, network.prop_delay, mode="worst")
    # any arc-delay vector >= propagation gives >= path delays
    inflated = engine.path_delays(
        routing, network.prop_delay + 0.001, mode="worst"
    )
    mask = ~np.isnan(prop) & np.isfinite(prop)
    assert np.all(inflated[mask] >= prop[mask])


@settings(max_examples=20, deadline=None)
@given(case=engine_cases())
def test_unused_arc_failure_changes_nothing(case):
    network, weights, demands = case
    engine = RoutingEngine(network)
    routing = engine.route_class(weights, demands)
    if routing.masks.shape[0] == 0:
        return
    used = routing.masks.any(axis=0)
    unused = np.flatnonzero(~used)
    if unused.size == 0:
        return
    arc = int(unused[0])
    scenario = FailureScenario(failed_arcs=(arc,), label="unused")
    rerouted = engine.route_class(weights, demands, scenario)
    np.testing.assert_allclose(
        rerouted.loads, routing.loads, rtol=1e-12, atol=1e-9
    )
    assert rerouted.undelivered == pytest.approx(routing.undelivered)


@settings(max_examples=15, deadline=None)
@given(case=engine_cases(), scale=st.floats(0.1, 10.0))
def test_loads_linear_in_demand(case, scale):
    network, weights, demands = case
    engine = RoutingEngine(network)
    base = engine.route_class(weights, demands)
    scaled = engine.route_class(weights, demands * scale)
    np.testing.assert_allclose(
        scaled.loads, base.loads * scale, rtol=1e-9, atol=1e-9
    )
