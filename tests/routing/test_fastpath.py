"""Property tests pinning the fast propagation kernels to the reference.

The engine's pure-Python kernels must agree exactly (up to float noise)
with the numpy reference implementations in ``repro.routing.loader`` on
random graphs, weights, and demands.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.fastpath import (
    PropagationPlan,
    all_destination_masks,
    destination_mask_rows,
    fast_path_counts,
    fast_propagate_loads,
    fast_propagate_mean_delay,
    fast_propagate_worst_delay,
)
from repro.routing.loader import (
    path_counts_reference,
    propagate_loads,
    propagate_mean_delay,
    propagate_worst_delay,
)
from repro.routing.spf import distance_matrix, shortest_arc_mask
from repro.topology import rand_topology


@st.composite
def routing_cases(draw):
    """Random (network, weights, demands, destination) cases."""
    seed = draw(st.integers(0, 2**31 - 1))
    num_nodes = draw(st.integers(8, 14))
    degree = draw(st.sampled_from([3.0, 4.0, 5.0]))
    gen = np.random.default_rng(seed)
    network = rand_topology(num_nodes, degree, gen, two_edge_connected=False)
    weights = gen.integers(1, 12, network.num_arcs).astype(float)
    demands = gen.uniform(0.0, 10.0, size=(num_nodes, num_nodes))
    np.fill_diagonal(demands, 0.0)
    t = draw(st.integers(0, num_nodes - 1))
    return network, weights, demands, t


@settings(max_examples=40, deadline=None)
@given(case=routing_cases())
def test_fast_loads_match_reference(case):
    network, weights, demands, t = case
    dist = distance_matrix(network, weights)
    mask = shortest_arc_mask(network, weights, dist[:, t])

    ref_loads = np.zeros(network.num_arcs)
    ref_lost = propagate_loads(
        network, mask, dist[:, t], demands[:, t], t, ref_loads
    )

    plan = PropagationPlan.for_network(network)
    fast_loads = [0.0] * network.num_arcs
    fast_lost = fast_propagate_loads(
        plan, mask, dist[:, t], demands[:, t], t, fast_loads
    )
    np.testing.assert_allclose(fast_loads, ref_loads, rtol=1e-12, atol=1e-9)
    assert fast_lost == pytest.approx(ref_lost, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(case=routing_cases())
def test_fast_delays_match_reference(case):
    network, weights, demands, t = case
    del demands
    dist = distance_matrix(network, weights)
    mask = shortest_arc_mask(network, weights, dist[:, t])
    gen = np.random.default_rng(network.num_arcs)
    arc_delays = gen.uniform(0.001, 0.02, network.num_arcs)

    plan = PropagationPlan.for_network(network)
    ref_worst = propagate_worst_delay(
        network, mask, dist[:, t], arc_delays, t
    )
    fast_worst = fast_propagate_worst_delay(
        plan, mask, dist[:, t], arc_delays.tolist(), t
    )
    np.testing.assert_allclose(fast_worst, ref_worst, rtol=1e-12)

    ref_mean = propagate_mean_delay(network, mask, dist[:, t], arc_delays, t)
    fast_mean = fast_propagate_mean_delay(
        plan, mask, dist[:, t], arc_delays.tolist(), t
    )
    np.testing.assert_allclose(fast_mean, ref_mean, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(case=routing_cases())
def test_vectorized_masks_match_per_destination(case):
    network, weights, demands, _ = case
    dist = distance_matrix(network, weights)
    destinations = np.flatnonzero(demands.sum(axis=0) > 0)
    masks = all_destination_masks(network, weights, dist, None, destinations)
    for row, t in enumerate(destinations):
        expected = shortest_arc_mask(network, weights, dist[:, t])
        np.testing.assert_array_equal(masks[row], expected)


@settings(max_examples=30, deadline=None)
@given(case=routing_cases())
def test_fast_path_counts_match_reference(case):
    """The path-counts kernel is pinned to the numpy reference exactly
    (counts are integer-valued floats, so equality is bitwise)."""
    network, weights, demands, t = case
    del demands
    dist = distance_matrix(network, weights)
    mask = shortest_arc_mask(network, weights, dist[:, t])
    plan = PropagationPlan.for_network(network)
    fast = fast_path_counts(plan, mask, dist[:, t], t)
    reference = path_counts_reference(network, mask, dist[:, t], t)
    np.testing.assert_array_equal(fast, reference)


@settings(max_examples=30, deadline=None)
@given(case=routing_cases())
def test_spf_path_counts_uses_fast_kernel(case):
    """The public spf.path_counts entry point equals the reference."""
    from repro.routing.spf import path_counts

    network, weights, demands, t = case
    del demands
    dist = distance_matrix(network, weights)
    mask = shortest_arc_mask(network, weights, dist[:, t])
    plan = PropagationPlan.for_network(network)
    np.testing.assert_array_equal(
        path_counts(network, mask, dist[:, t], t, plan=plan),
        path_counts_reference(network, mask, dist[:, t], t),
    )


@settings(max_examples=25, deadline=None)
@given(case=routing_cases())
def test_destination_mask_rows_match_all_destination_masks(case):
    """The column-oriented mask builder equals the all-pairs one."""
    network, weights, demands, _ = case
    dist = distance_matrix(network, weights)
    destinations = np.flatnonzero(demands.sum(axis=0) > 0)
    from_matrix = all_destination_masks(
        network, weights, dist, None, destinations
    )
    from_columns = destination_mask_rows(
        network, weights, dist[:, destinations]
    )
    np.testing.assert_array_equal(from_columns, from_matrix)


def test_plan_matches_network(square_network):
    plan = PropagationPlan.for_network(square_network)
    assert len(plan.out_arcs) == square_network.num_nodes
    assert list(plan.arc_dst) == square_network.arc_dst.tolist()
    for node in range(square_network.num_nodes):
        assert list(plan.out_arcs[node]) == (
            square_network.out_arcs[node].tolist()
        )
