"""Tests for the routing engine."""

import numpy as np
import pytest

from repro.routing.engine import RoutingEngine
from repro.routing.failures import FailureScenario
from repro.routing.state import NetworkState


def demand_matrix(n, pairs):
    demands = np.zeros((n, n))
    for s, t, v in pairs:
        demands[s, t] = v
    return demands


class TestRouteClass:
    def test_loads_on_single_path(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        weights[square_network.arc_id(0, 2)] = 9
        weights[square_network.arc_id(2, 0)] = 9
        demands = demand_matrix(4, [(1, 0, 10.0)])
        routing = engine.route_class(weights, demands)
        assert routing.loads[square_network.arc_id(1, 0)] == pytest.approx(
            10.0
        )
        assert routing.undelivered == 0.0

    def test_destinations_only_with_demand(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(0, 3, 1.0), (1, 3, 2.0)])
        routing = engine.route_class(weights, demands)
        assert routing.destinations.tolist() == [3]

    def test_mask_for_destination(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(0, 3, 1.0)])
        routing = engine.route_class(weights, demands)
        mask = routing.mask_for(3)
        assert mask[square_network.arc_id(0, 3)]
        with pytest.raises(KeyError):
            routing.mask_for(1)

    def test_failure_scenario_changes_route(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(0, 1, 4.0)])
        direct = square_network.arc_id(0, 1)
        scenario = FailureScenario(
            failed_arcs=(direct, square_network.arc_id(1, 0)),
            label="link",
        )
        routing = engine.route_class(weights, demands, scenario)
        assert routing.loads[direct] == 0.0
        # re-routed 0 -> 2 -> 1
        assert routing.loads[square_network.arc_id(0, 2)] == pytest.approx(
            4.0
        )

    def test_node_removal_drops_traffic(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(0, 1, 4.0), (2, 3, 2.0)])
        scenario = FailureScenario(
            failed_arcs=tuple(
                int(a) for a in square_network.arcs_of_node(1)
            ),
            removed_nodes=(1,),
            label="node:1",
        )
        routing = engine.route_class(weights, demands, scenario)
        # demand from/to node 1 vanished; 2 -> 3 still routed
        assert routing.demands[0, 1] == 0.0
        assert routing.loads[square_network.arc_id(2, 3)] == pytest.approx(
            2.0
        )

    def test_bad_demand_shape_rejected(self, square_network):
        engine = RoutingEngine(square_network)
        with pytest.raises(ValueError, match="shape"):
            engine.route_class(
                np.ones(square_network.num_arcs), np.zeros((3, 3))
            )


class TestPathDelays:
    def test_worst_delay_matrix(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(1, 3, 1.0)])
        routing = engine.route_class(weights, demands)
        arc_delays = np.full(square_network.num_arcs, 0.003)
        delays = engine.path_delays(routing, arc_delays)
        assert delays[1, 3] == pytest.approx(0.006)
        assert np.isnan(delays[3, 3])
        assert np.isnan(delays[0, 1])  # destination 1 carries no demand

    def test_mean_mode(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(1, 3, 1.0)])
        routing = engine.route_class(weights, demands)
        arc_delays = np.full(square_network.num_arcs, 0.003)
        worst = engine.path_delays(routing, arc_delays, mode="worst")
        mean = engine.path_delays(routing, arc_delays, mode="mean")
        assert mean[1, 3] <= worst[1, 3] + 1e-15

    def test_unknown_mode_rejected(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        demands = demand_matrix(4, [(1, 3, 1.0)])
        routing = engine.route_class(weights, demands)
        with pytest.raises(ValueError, match="delay mode"):
            engine.path_delays(routing, np.ones(10), mode="median")


class TestPathMaxUtilization:
    def test_reports_bottleneck(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        weights[square_network.arc_id(1, 2)] = 9  # force 1->0->3
        demands = demand_matrix(4, [(1, 3, 1.0)])
        routing = engine.route_class(weights, demands)
        utilization = np.zeros(square_network.num_arcs)
        utilization[square_network.arc_id(0, 3)] = 0.7
        per_pair = engine.path_max_utilization(routing, utilization)
        assert per_pair[1, 3] == pytest.approx(0.7)


class TestNetworkState:
    def test_from_routings(self, square_network):
        engine = RoutingEngine(square_network)
        weights = np.ones(square_network.num_arcs)
        d = engine.route_class(weights, demand_matrix(4, [(0, 3, 10e6)]))
        t = engine.route_class(weights, demand_matrix(4, [(1, 3, 30e6)]))
        state = NetworkState.from_routings(d, t)
        assert state.total_loads.sum() == pytest.approx(
            d.loads.sum() + t.loads.sum()
        )
        assert 0 < state.mean_utilization < state.max_utilization <= 1.0
        assert state.arcs_carrying_tput().any()

    def test_shape_validation(self, square_network):
        with pytest.raises(ValueError, match="per arc"):
            NetworkState(
                network=square_network,
                loads_delay=np.zeros(3),
                loads_tput=np.zeros(square_network.num_arcs),
            )
