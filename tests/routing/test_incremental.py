"""Parity tests for the incremental delta-rerouting core.

The contract is strict: after any sequence of single-arc weight moves,
reverts, and failure scenarios, :class:`IncrementalRouter` must produce
``dist`` / ``masks`` / ``loads`` / ``undelivered`` **bit-identical** to a
from-scratch :meth:`RoutingEngine.route_class` call.  Assertions use
exact equality throughout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.engine import RoutingEngine
from repro.routing.failures import (
    FailureScenario,
    single_link_failures,
    single_node_failures,
)
from repro.routing.incremental import IncrementalRouter
from repro.topology import rand_topology


def assert_routing_identical(incremental, scratch):
    """Exact equality of every array of two ClassRoutings."""
    np.testing.assert_array_equal(
        incremental.destinations, scratch.destinations
    )
    assert np.array_equal(incremental.dist, scratch.dist)
    assert np.array_equal(incremental.masks, scratch.masks)
    assert np.array_equal(incremental.loads, scratch.loads)
    assert np.array_equal(incremental.demands, scratch.demands)
    assert incremental.undelivered == scratch.undelivered


@st.composite
def router_cases(draw):
    """Random (network, weights, demands) instances."""
    seed = draw(st.integers(0, 2**31 - 1))
    num_nodes = draw(st.integers(8, 16))
    degree = draw(st.sampled_from([3.0, 4.0, 5.0]))
    gen = np.random.default_rng(seed)
    network = rand_topology(
        num_nodes, degree, gen, two_edge_connected=False
    )
    weights = gen.integers(1, 18, network.num_arcs).astype(np.float64)
    demands = gen.uniform(0.0, 5.0, size=(num_nodes, num_nodes))
    np.fill_diagonal(demands, 0.0)
    demands[gen.uniform(size=demands.shape) < 0.3] = 0.0
    return network, weights, demands, seed


@settings(max_examples=20, deadline=None)
@given(case=router_cases())
def test_move_sequences_bit_identical(case):
    """Long random move/revert sequences match route_class exactly."""
    network, weights, demands, seed = case
    gen = np.random.default_rng(seed + 1)
    engine = RoutingEngine(network)
    router = IncrementalRouter(network, demands, weights)
    current = weights.copy()
    for _ in range(30):
        arc = int(gen.integers(0, network.num_arcs))
        old = current[arc]
        new = float(gen.integers(1, 18))
        current[arc] = new
        router.set_arc_weight(arc, new)
        if gen.uniform() < 0.3:  # revert, like a rejected move
            current[arc] = old
            router.set_arc_weight(arc, old)
        assert_routing_identical(
            router.routing, engine.route_class(current, demands)
        )


@settings(max_examples=20, deadline=None)
@given(case=router_cases())
def test_failure_scenarios_bit_identical(case):
    """Arc, link and node failures match a scratch scenario routing."""
    network, weights, demands, seed = case
    gen = np.random.default_rng(seed + 2)
    engine = RoutingEngine(network)
    router = IncrementalRouter(network, demands, weights)
    scenarios = list(single_link_failures(network))
    scenarios += [
        FailureScenario(failed_arcs=(int(a),), label=f"arc:{a}")
        for a in gen.choice(
            network.num_arcs, size=min(6, network.num_arcs), replace=False
        )
    ]
    scenarios += list(
        single_node_failures(
            network, nodes=gen.choice(network.num_nodes, 4, replace=False)
        )
    )
    for scenario in scenarios:
        got = router.route_scenario(scenario).routing
        expected = engine.route_class(weights, demands, scenario)
        assert_routing_identical(got, expected)
    # scenario routing never mutates the base state
    assert_routing_identical(
        router.routing, engine.route_class(weights, demands)
    )


@settings(max_examples=10, deadline=None)
@given(case=router_cases())
def test_interleaved_moves_and_failures(case):
    """Moves, reverts and failure sweeps interleaved stay exact."""
    network, weights, demands, seed = case
    gen = np.random.default_rng(seed + 3)
    engine = RoutingEngine(network)
    router = IncrementalRouter(network, demands, weights)
    current = weights.copy()
    failures = list(single_link_failures(network))
    for step in range(8):
        arc = int(gen.integers(0, network.num_arcs))
        new = float(gen.integers(1, 18))
        current[arc] = new
        router.set_arc_weight(arc, new)
        for scenario in failures[:: max(1, len(failures) // 5)]:
            got = router.route_scenario(scenario).routing
            expected = engine.route_class(current, demands, scenario)
            assert_routing_identical(got, expected)


class TestSyncAndReuse:
    @pytest.fixture
    def instance(self):
        gen = np.random.default_rng(3)
        network = rand_topology(12, 4.0, gen)
        weights = gen.integers(1, 15, network.num_arcs).astype(np.float64)
        demands = gen.uniform(0.0, 5.0, size=(12, 12))
        np.fill_diagonal(demands, 0.0)
        return network, weights, demands

    def test_sync_rebuild_on_large_diff(self, instance):
        network, weights, demands = instance
        router = IncrementalRouter(network, demands, weights)
        other = np.maximum(1.0, weights[::-1].copy())
        router.sync(other)
        assert router.stats.rebuilds == 2  # constructor + oversized sync
        expected = RoutingEngine(network).route_class(other, demands)
        assert_routing_identical(router.routing, expected)

    def test_sync_small_diff_uses_deltas(self, instance):
        network, weights, demands = instance
        router = IncrementalRouter(network, demands, weights)
        moved = weights.copy()
        moved[0] = moved[0] + 1
        moved[3] = max(1.0, moved[3] - 1)
        router.sync(moved)
        assert router.stats.rebuilds == 1
        assert router.stats.deltas == 2
        expected = RoutingEngine(network).route_class(moved, demands)
        assert_routing_identical(router.routing, expected)

    def test_unused_arc_increase_touches_nothing(self, instance):
        """The classic unused-arc shortcut is the trivial delta case."""
        network, weights, demands = instance
        router = IncrementalRouter(network, demands, weights)
        used = router.routing.used_arcs()
        unused = np.flatnonzero(~used)
        if unused.size == 0:
            pytest.skip("every arc used under this weight draw")
        before = router.stats.destinations_recomputed
        routing_before = router.routing
        touched = router.set_arc_weight(int(unused[0]), 20.0)
        assert touched == 0
        assert router.stats.destinations_recomputed == before
        # the assembled routing is still valid (and still cached)
        assert router.routing is routing_before

    def test_matching_destinations_exact(self, instance):
        network, weights, demands = instance
        router = IncrementalRouter(network, demands, weights)
        base = router.routing
        all_dests = frozenset(int(t) for t in router.destinations)
        assert router.matching_destinations(base) == all_dests
        assert router.matching_destinations(None) is None
        # a delta shrinks the matching set by exactly the touched rows
        arc = int(np.flatnonzero(base.used_arcs())[0])
        router.set_arc_weight(arc, 20.0)
        matching = router.matching_destinations(base)
        expected = frozenset(
            int(t)
            for row, t in enumerate(router.destinations)
            if np.array_equal(base.masks[row], router.routing.masks[row])
            and np.array_equal(
                base.dist[:, int(t)], router.routing.dist[:, int(t)]
            )
        )
        assert matching == expected

    def test_non_integral_weights_rejected_from_fast_dijkstra(
        self, instance
    ):
        """Float weights still route correctly (scipy fallback)."""
        network, weights, demands = instance
        w = weights + 0.5
        router = IncrementalRouter(network, demands, w)
        expected = RoutingEngine(network).route_class(w, demands)
        assert_routing_identical(router.routing, expected)

    def test_weight_below_one_rejected(self, instance):
        network, weights, demands = instance
        router = IncrementalRouter(network, demands, weights)
        with pytest.raises(ValueError, match=">= 1"):
            router.set_arc_weight(0, 0.0)

    def test_bad_demand_shape_rejected(self, instance):
        network, weights, _ = instance
        with pytest.raises(ValueError, match="shape"):
            IncrementalRouter(network, np.zeros((3, 3)), weights)
