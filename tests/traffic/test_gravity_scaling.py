"""Tests for gravity traffic generation and utilization scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import rand_topology
from repro.traffic.gravity import DtrTraffic, dtr_traffic, gravity_matrix
from repro.traffic.scaling import (
    reference_weights,
    scale_to_utilization,
    utilization_under_weights,
)


class TestGravityMatrix:
    def test_total_volume(self, rng):
        tm = gravity_matrix(10, rng, 5e8)
        assert tm.total == pytest.approx(5e8)

    def test_every_pair_positive(self, rng):
        tm = gravity_matrix(8, rng, 1.0)
        off_diag = ~np.eye(8, dtype=bool)
        assert np.all(tm.values[off_diag] > 0)

    def test_deterministic_per_seed(self):
        a = gravity_matrix(6, np.random.default_rng(1), 1.0)
        b = gravity_matrix(6, np.random.default_rng(1), 1.0)
        np.testing.assert_array_equal(a.values, b.values)

    def test_zero_volume(self, rng):
        tm = gravity_matrix(5, rng, 0.0)
        assert tm.total == 0.0

    def test_invalid_masses(self, rng):
        with pytest.raises(ValueError):
            gravity_matrix(5, rng, 1.0, mass_low=0.0)


class TestDtrTraffic:
    def test_delay_fraction(self, rng):
        traffic = dtr_traffic(10, rng, 1e9, delay_fraction=0.3)
        assert traffic.delay_fraction == pytest.approx(0.3)
        assert traffic.total == pytest.approx(1e9)

    def test_scaled(self, rng):
        traffic = dtr_traffic(10, rng, 1e9)
        doubled = traffic.scaled(2.0)
        assert doubled.total == pytest.approx(2e9)
        assert doubled.delay_fraction == pytest.approx(
            traffic.delay_fraction
        )

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            dtr_traffic(10, rng, 1.0, delay_fraction=1.0)

    def test_dimension_mismatch_rejected(self, rng):
        delay = gravity_matrix(5, rng, 1.0)
        tput = gravity_matrix(6, rng, 1.0)
        with pytest.raises(ValueError):
            DtrTraffic(delay=delay, throughput=tput)


class TestScaling:
    @settings(max_examples=15, deadline=None)
    @given(
        target=st.sampled_from([0.2, 0.43, 0.74, 0.9]),
        statistic=st.sampled_from(["mean", "max"]),
        seed=st.integers(0, 1000),
    )
    def test_hits_target_exactly(self, target, statistic, seed):
        gen = np.random.default_rng(seed)
        network = rand_topology(12, 4.0, gen)
        traffic = dtr_traffic(12, gen, 1.0)
        scaled = scale_to_utilization(network, traffic, target, statistic)
        utilization = utilization_under_weights(
            network,
            scaled,
            reference_weights(network),
            reference_weights(network),
        )
        observed = (
            utilization.mean() if statistic == "mean" else utilization.max()
        )
        assert observed == pytest.approx(target, rel=1e-9)

    def test_invalid_target(self, small_instance):
        network, traffic = small_instance
        with pytest.raises(ValueError):
            scale_to_utilization(network, traffic, 0.0)

    def test_invalid_statistic(self, small_instance):
        network, traffic = small_instance
        with pytest.raises(ValueError, match="statistic"):
            scale_to_utilization(network, traffic, 0.5, "median")
