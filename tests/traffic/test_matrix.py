"""Tests for the TrafficMatrix value object."""

import numpy as np
import pytest

from repro.traffic.matrix import TrafficMatrix


class TestConstruction:
    def test_diagonal_forced_zero(self):
        values = np.ones((3, 3))
        tm = TrafficMatrix(values)
        assert np.all(np.diag(tm.values) == 0)

    def test_input_not_mutated(self):
        values = np.ones((3, 3))
        TrafficMatrix(values)
        assert values[0, 0] == 1.0

    def test_read_only(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        with pytest.raises(ValueError):
            tm.values[0, 1] = 5.0

    def test_rejects_negative(self):
        values = np.ones((3, 3))
        values[0, 1] = -1
        with pytest.raises(ValueError, match="non-negative"):
            TrafficMatrix(values)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            TrafficMatrix(np.ones((2, 3)))

    def test_rejects_nan(self):
        values = np.ones((3, 3))
        values[1, 2] = np.nan
        with pytest.raises(ValueError, match="finite"):
            TrafficMatrix(values)


class TestAccessors:
    def test_total_excludes_diagonal(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        assert tm.total == pytest.approx(6.0)

    def test_num_positive_pairs(self):
        values = np.zeros((3, 3))
        values[0, 1] = 2.0
        values[2, 0] = 1.0
        tm = TrafficMatrix(values)
        assert tm.num_positive_pairs == 2

    def test_pairs_iteration(self):
        values = np.zeros((3, 3))
        values[0, 2] = 4.0
        tm = TrafficMatrix(values)
        assert list(tm.pairs()) == [(0, 2, 4.0)]


class TestOperations:
    def test_scaled(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        assert tm.scaled(2.0).total == pytest.approx(12.0)

    def test_scaled_rejects_negative(self):
        tm = TrafficMatrix(np.ones((3, 3)))
        with pytest.raises(ValueError):
            tm.scaled(-1.0)

    def test_addition(self):
        a = TrafficMatrix(np.ones((3, 3)))
        b = TrafficMatrix(np.full((3, 3), 2.0))
        assert (a + b).total == pytest.approx(18.0)

    def test_addition_dimension_mismatch(self):
        a = TrafficMatrix(np.ones((3, 3)))
        b = TrafficMatrix(np.ones((4, 4)))
        with pytest.raises(ValueError):
            a + b

    def test_with_values_keeps_name(self):
        tm = TrafficMatrix(np.ones((3, 3)), name="delay")
        new = tm.with_values(np.full((3, 3), 3.0))
        assert new.name == "delay"
        assert new.total == pytest.approx(18.0)
