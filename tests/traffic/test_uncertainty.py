"""Tests for the traffic-uncertainty models of Section V-F."""

import numpy as np
import pytest

from repro.traffic.gravity import dtr_traffic
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.uncertainty import (
    HotspotMode,
    HotspotSpec,
    fluctuate_traffic,
    gaussian_fluctuation,
    hotspot,
)


class TestGaussianFluctuation:
    def test_zero_eps_is_identity(self, rng):
        tm = TrafficMatrix(np.full((5, 5), 3.0))
        out = gaussian_fluctuation(tm, 0.0, rng)
        np.testing.assert_array_equal(out.values, tm.values)

    def test_never_negative(self, rng):
        tm = TrafficMatrix(np.full((10, 10), 1.0))
        out = gaussian_fluctuation(tm, 2.0, rng)
        assert np.all(out.values >= 0)

    def test_magnitude_scales_with_eps(self):
        tm = TrafficMatrix(np.full((20, 20), 100.0))
        small = gaussian_fluctuation(tm, 0.05, np.random.default_rng(1))
        large = gaussian_fluctuation(tm, 0.5, np.random.default_rng(1))
        small_dev = np.abs(small.values - tm.values).mean()
        large_dev = np.abs(large.values - tm.values).mean()
        assert large_dev > small_dev

    def test_mean_preserved_approximately(self):
        tm = TrafficMatrix(np.full((30, 30), 50.0))
        out = gaussian_fluctuation(tm, 0.2, np.random.default_rng(0))
        assert out.total == pytest.approx(tm.total, rel=0.05)

    def test_negative_eps_rejected(self, rng):
        tm = TrafficMatrix(np.ones((4, 4)))
        with pytest.raises(ValueError):
            gaussian_fluctuation(tm, -0.1, rng)

    def test_fluctuate_both_classes(self, rng):
        traffic = dtr_traffic(8, rng, 1.0)
        out = fluctuate_traffic(traffic, 0.2, rng)
        assert out.delay.values.shape == traffic.delay.values.shape
        assert not np.array_equal(out.delay.values, traffic.delay.values)


class TestHotspot:
    def test_only_increases_entries(self, rng):
        traffic = dtr_traffic(20, rng, 1.0)
        surged = hotspot(traffic, rng)
        assert np.all(surged.delay.values >= traffic.delay.values - 1e-15)
        assert np.all(
            surged.throughput.values >= traffic.throughput.values - 1e-15
        )

    def test_surge_bounded_by_factor(self, rng):
        traffic = dtr_traffic(20, rng, 1.0)
        spec = HotspotSpec(factor_low=2.0, factor_high=6.0)
        surged = hotspot(traffic, rng, spec)
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(
                traffic.delay.values > 0,
                surged.delay.values / np.where(
                    traffic.delay.values > 0, traffic.delay.values, 1.0
                ),
                1.0,
            )
        assert ratio.max() <= 6.0 + 1e-9

    def test_number_of_scaled_pairs(self, rng):
        traffic = dtr_traffic(20, rng, 1.0)
        spec = HotspotSpec(server_fraction=0.1, client_fraction=0.5)
        surged = hotspot(traffic, rng, spec)
        changed = np.count_nonzero(
            ~np.isclose(surged.delay.values, traffic.delay.values)
        )
        assert changed == 10  # one entry per client

    def test_upload_vs_download_direction(self):
        gen = np.random.default_rng(9)
        traffic = dtr_traffic(10, gen, 1.0)
        up = hotspot(
            traffic,
            np.random.default_rng(5),
            HotspotSpec(mode=HotspotMode.UPLOAD),
        )
        down = hotspot(
            traffic,
            np.random.default_rng(5),
            HotspotSpec(mode=HotspotMode.DOWNLOAD),
        )
        up_changed = np.argwhere(
            ~np.isclose(up.delay.values, traffic.delay.values)
        )
        down_changed = np.argwhere(
            ~np.isclose(down.delay.values, traffic.delay.values)
        )
        # same (server, client) draws, opposite directions
        assert {tuple(x) for x in up_changed} == {
            tuple(x[::-1]) for x in down_changed
        }

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            HotspotSpec(server_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotSpec(factor_low=0.5)

    def test_too_many_participants_rejected(self, rng):
        traffic = dtr_traffic(10, rng, 1.0)
        spec = HotspotSpec(server_fraction=0.6, client_fraction=0.6)
        with pytest.raises(ValueError, match="exceed"):
            hotspot(traffic, rng, spec)
