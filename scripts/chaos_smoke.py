"""Chaos-parity smoke test: kill workers mid-sweep, compare bitwise.

CI drives this as one self-contained step against one small seeded
instance::

    python scripts/chaos_smoke.py
    python scripts/chaos_smoke.py --seed 3 --timeout-delay 2.0

The run sweeps the same seeded single-link failure set three times:

* **fault-free** on the parallel shared-memory path (the reference),
* under an injected **worker SIGKILL** plan (a worker kills itself
  mid-sweep; the supervisor rebuilds the pool and re-dispatches), and
* under an injected **task delay** plan with a per-task timeout (a
  wedged worker trips the deadline and is recycled).

It exits nonzero unless every chaos sweep is bit-identical to the
fault-free run, the resilience counters actually recorded the injected
damage (a silent pass would mean the faults never fired), and no
shared-memory block leaked — neither in the process-local registry nor
on ``/dev/shm``.

Any divergence is a real bug in the supervision path, never tolerance
noise: the recovery contract is bitwise.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.config import ExecutionParams, OptimizerConfig
from repro.core.evaluation import DtrEvaluator
from repro.core.faults import FaultPlan, TaskDelay, WorkerKill
from repro.core.parallel import _LIVE_SWEEP_STATES, ParallelDtrEvaluator
from repro.core.resilience import global_stats
from repro.core.weights import WeightSetting
from repro.routing.failures import single_link_failures
from repro.topology.isp import isp_topology
from repro.traffic import dtr_traffic, scale_to_utilization


def shm_blocks() -> "set[str]":
    """Names of the POSIX shared-memory blocks currently on the box."""
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: fall back to the registry
        return set()


def sweeps_identical(a, b) -> bool:
    """Bitwise cost/SLA/load equality of two failure sweeps."""
    if len(a) != len(b):
        return False
    return all(
        x.cost.lam == y.cost.lam
        and x.cost.phi == y.cost.phi
        and x.sla.violations == y.sla.violations
        and np.array_equal(x.loads_delay, y.loads_delay)
        and np.array_equal(x.loads_tput, y.loads_tput)
        for x, y in zip(a.evaluations, b.evaluations)
    )


def run_sweep(network, traffic, setting, failures, execution):
    """One supervised parallel sweep; returns (result, stats)."""
    with ParallelDtrEvaluator(
        network,
        traffic,
        OptimizerConfig().replace(execution=execution),
    ) as evaluator:
        result = evaluator.evaluate_failures(setting, failures)
        return result, evaluator.resilience_stats


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=2, help="pool workers (default 2)"
    )
    parser.add_argument(
        "--timeout-delay",
        type=float,
        default=3.0,
        help="injected stall in seconds for the timeout scenario",
    )
    args = parser.parse_args(argv)

    network = isp_topology()
    rng = np.random.default_rng(11)
    traffic = scale_to_utilization(
        network, dtr_traffic(network.num_nodes, rng, 1.0), 0.43, "mean"
    )
    failures = single_link_failures(network)
    setting = WeightSetting.random(
        network.num_arcs,
        OptimizerConfig().weights,
        np.random.default_rng(args.seed + 23),
    )
    print(
        f"instance: {network.num_nodes} nodes, {network.num_arcs} arcs, "
        f"{len(failures)} failure scenarios; n_jobs={args.jobs}"
    )

    blocks_before = shm_blocks()
    serial = DtrEvaluator(network, traffic, OptimizerConfig())
    reference = serial.evaluate_failures(setting, failures)

    scenarios = [
        (
            "fault-free",
            ExecutionParams(n_jobs=args.jobs),
            # nothing injected: every counter must stay zero
            lambda s: s.total_failures == 0 and not s.degraded,
        ),
        (
            "worker-kill",
            ExecutionParams(
                n_jobs=args.jobs,
                retry_backoff=0.0,
                fault_plan=FaultPlan(
                    faults=(WorkerKill(task=0),), seed=args.seed
                ),
            ),
            # the kill must have fired and been absorbed by a retry
            lambda s: s.worker_failures >= 1
            and s.retries >= 1
            and s.pool_rebuilds >= 1
            and not s.degraded,
        ),
        (
            "task-timeout",
            ExecutionParams(
                n_jobs=args.jobs,
                retry_backoff=0.0,
                task_timeout=max(0.25, args.timeout_delay / 4),
                fault_plan=FaultPlan(
                    faults=(
                        TaskDelay(task=0, seconds=args.timeout_delay),
                    ),
                    seed=args.seed,
                ),
            ),
            lambda s: s.timeouts >= 1
            and s.retries >= 1
            and not s.degraded,
        ),
    ]

    failed = False
    for name, execution, stats_ok in scenarios:
        result, stats = run_sweep(
            network, traffic, setting, failures, execution
        )
        parity = sweeps_identical(reference, result)
        counters = {
            k: v for k, v in stats.as_dict().items() if v
        } or "all zero"
        print(f"  {name:>12}: parity={parity}  counters={counters}")
        if not parity:
            print(
                f"FAIL: {name} sweep diverged from the serial reference",
                file=sys.stderr,
            )
            failed = True
        if not stats_ok(stats):
            print(
                f"FAIL: {name} resilience counters unexpected: "
                f"{stats.as_dict()}",
                file=sys.stderr,
            )
            failed = True

    if list(_LIVE_SWEEP_STATES):
        print("FAIL: live shared sweep state leaked", file=sys.stderr)
        failed = True
    leaked = shm_blocks() - blocks_before
    if leaked:
        print(
            f"FAIL: leaked /dev/shm blocks: {sorted(leaked)}",
            file=sys.stderr,
        )
        failed = True

    total = global_stats()
    print(
        "  process totals: "
        + " ".join(f"{k}={v}" for k, v in total.as_dict().items() if v)
    )
    if failed:
        return 1
    print(
        "chaos parity OK: every injected-fault sweep bit-identical "
        "to the fault-free run; no shm leaks"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
