"""Resume-parity smoke test: interrupt, resume, compare bitwise.

CI drives this in three steps against one small seeded instance::

    python scripts/resume_smoke.py reference --out ref.pkl
    python scripts/resume_smoke.py interrupt --checkpoint run.ckpt
    python scripts/resume_smoke.py resume --checkpoint run.ckpt \
        --reference ref.pkl

``reference`` runs the optimizer uninterrupted and records the final
weights and costs.  ``interrupt`` runs the same seeded optimization but
self-delivers a real SIGTERM mid-iteration (via the optimizer's
``interrupt_after`` hook); it exits 0 only if the run was interrupted
AND left a checkpoint behind.  ``resume`` restarts from that checkpoint
and exits nonzero unless the resumed result is bit-identical to the
reference — same weight arrays (``np.array_equal``), same normal and
K_fail costs.

Any divergence is a real bug in the checkpoint/resume path, never
tolerance noise: the resume contract is bitwise.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from pathlib import Path

import numpy as np

from repro.config import (
    OptimizerConfig,
    SamplingParams,
    SearchParams,
    WeightParams,
)
from repro.core.checkpoint import OptimizerInterrupted
from repro.core.optimizer import RobustDtrOptimizer, RobustRoutingResult
from repro.exp.common import make_instance

#: Where in the run the SIGTERM lands.  25 boundaries is deep inside
#: Phase 2 for this configuration, so the resumed run re-enters the
#: robust search mid-stream — the hardest case.
INTERRUPT_AFTER = 25

SEED = 0


def build_optimizer() -> RobustDtrOptimizer:
    """The smoke instance: small, seeded, minutes-scale."""
    config = OptimizerConfig(
        weights=WeightParams(w_min=1, w_max=12, q=0.7),
        search=SearchParams(
            phase1_diversification_interval=3,
            phase1_diversifications=1,
            phase2_diversification_interval=2,
            phase2_diversifications=1,
            improvement_cutoff=0.01,
            arcs_per_iteration_fraction=0.5,
            round_iteration_cap_factor=3,
            max_iterations=30,
        ),
        sampling=SamplingParams(
            tau=1, min_samples_per_link=2, max_extra_samples=400
        ),
        critical_fraction=0.2,
        keep_acceptable_settings=5,
    )
    instance = make_instance("rand", 12, 4.0, seed=SEED)
    return RobustDtrOptimizer(
        instance.network,
        instance.traffic,
        config,
        rng=np.random.default_rng(SEED),
    )


def summarize(result: RobustRoutingResult) -> dict:
    """The comparison payload: weights and costs, nothing lossy."""
    return {
        "robust_delay": np.asarray(result.robust_setting.delay),
        "robust_tput": np.asarray(result.robust_setting.tput),
        "regular_delay": np.asarray(result.regular_setting.delay),
        "regular_tput": np.asarray(result.regular_setting.tput),
        "best_kfail": (
            result.phase2.best_kfail.lam,
            result.phase2.best_kfail.phi,
        ),
        "normal_cost": (
            result.phase2.normal_cost.lam,
            result.phase2.normal_cost.phi,
        ),
        "phase1_cost": (
            result.phase1.best_cost.lam,
            result.phase1.best_cost.phi,
        ),
    }


def cmd_reference(out: Path) -> int:
    optimizer = build_optimizer()
    try:
        result = optimizer.run()
    finally:
        optimizer.close()
    with open(out, "wb") as handle:
        pickle.dump(summarize(result), handle)
    print(f"reference written to {out}")
    print(f"  best K_fail: {result.phase2.best_kfail}")
    return 0


def cmd_interrupt(checkpoint: Path) -> int:
    optimizer = build_optimizer()
    try:
        optimizer.run(
            checkpoint=checkpoint,
            checkpoint_every=5,
            interrupt_after=INTERRUPT_AFTER,
        )
    except OptimizerInterrupted as interrupted:
        if not Path(interrupted.path).exists():
            print(
                f"FAIL: interrupted but no checkpoint at {interrupted.path}"
            )
            return 1
        print(f"interrupted as planned; checkpoint at {interrupted.path}")
        return 0
    finally:
        optimizer.close()
    print("FAIL: run completed without being interrupted")
    return 1


def cmd_resume(checkpoint: Path, reference: Path) -> int:
    if not checkpoint.exists():
        print(f"FAIL: no checkpoint at {checkpoint}")
        return 1
    with open(reference, "rb") as handle:
        expected = pickle.load(handle)
    optimizer = build_optimizer()
    try:
        result = optimizer.run(
            checkpoint=checkpoint,
            resume_from=checkpoint,
            checkpoint_every=5,
        )
    finally:
        optimizer.close()
    actual = summarize(result)
    failures = []
    for key, want in expected.items():
        got = actual[key]
        if isinstance(want, np.ndarray):
            same = np.array_equal(want, got)
        else:
            same = want == got
        status = "ok" if same else "DIVERGED"
        print(f"  {key}: {status}")
        if not same:
            failures.append(f"{key}: expected {want!r}, got {got!r}")
    if failures:
        print("FAIL: resumed run diverged bitwise from reference:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("resume parity OK: bit-identical to the uninterrupted run")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    ref = sub.add_parser("reference", help="run uninterrupted, record")
    ref.add_argument("--out", type=Path, required=True)
    inter = sub.add_parser("interrupt", help="run, SIGTERM mid-iteration")
    inter.add_argument("--checkpoint", type=Path, required=True)
    res = sub.add_parser("resume", help="resume and compare bitwise")
    res.add_argument("--checkpoint", type=Path, required=True)
    res.add_argument("--reference", type=Path, required=True)
    args = parser.parse_args(argv)
    if args.command == "reference":
        return cmd_reference(args.out)
    if args.command == "interrupt":
        return cmd_interrupt(args.checkpoint)
    return cmd_resume(args.checkpoint, args.reference)


if __name__ == "__main__":
    sys.exit(main())
