"""Derive routing-backend crossover constants from BENCH_scale.json.

``resolve_backend("auto")`` picks a kernel backend by comparing
``work = num_destinations * (num_nodes + num_arcs)`` against two
calibrated constants in :mod:`repro.routing.backend`:

* ``VECTOR_CROSSOVER_WORK`` — below it the python loops beat the
  vector kernels (per-call numpy overhead dominates tiny instances);
* ``NUMBA_CROSSOVER_WORK`` — above it the JIT kernels win whenever
  numba is importable.

This script re-derives both from a measured ``bench_scale.py`` record
instead of folklore: for each backend pair it brackets the measured
crossover — the largest per-sweep work where the cheap backend still
wins and the smallest where the expensive one wins — and suggests the
geometric mean of the bracket (the standard midpoint on a quantity
spanning orders of magnitude).  It prints suggested constants next to
the current ones and exits 0; it never edits source — calibration is a
reviewed change, not a side effect::

    python scripts/calibrate_crossovers.py                    # BENCH_scale.json
    python scripts/calibrate_crossovers.py BENCH_scale_jit.json

On a numba-less machine the numba columns are null and the script says
so: the CI ``jit`` lane's ``BENCH_scale_jit.json`` artifact is the
record to feed it for ``NUMBA_CROSSOVER_WORK`` (that is how the
current value of 2_000 was calibrated; see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.routing.backend import (  # noqa: E402
    NUMBA_CROSSOVER_WORK,
    VECTOR_CROSSOVER_WORK,
)


def sweep_work(row: dict) -> int:
    """The resolver's work metric for one full-sweep row.

    A sweep routes every destination, so ``num_destinations`` is the
    node count: ``work = nodes * (nodes + arcs)``.
    """
    return row["nodes"] * (row["nodes"] + row["arcs"])


def bracket_crossover(
    rows: "list[dict]", cheap: str, fast: str
) -> "tuple[int | None, int | None]":
    """Largest work where ``cheap`` wins, smallest where ``fast`` wins.

    Rows missing either column (e.g. numba on a machine without the
    JIT dependency) are skipped.
    """
    cheap_wins: "int | None" = None
    fast_wins: "int | None" = None
    for row in rows:
        cheap_rate = row.get(f"{cheap}_evals_per_sec")
        fast_rate = row.get(f"{fast}_evals_per_sec")
        if cheap_rate is None or fast_rate is None:
            continue
        work = sweep_work(row)
        if cheap_rate >= fast_rate:
            cheap_wins = max(cheap_wins or 0, work)
        elif fast_wins is None or work < fast_wins:
            fast_wins = work
    return cheap_wins, fast_wins


def suggest(cheap_wins: "int | None", fast_wins: "int | None") -> "int | None":
    """Geometric-mean midpoint of a crossover bracket."""
    if fast_wins is None:
        return None
    if cheap_wins is None or cheap_wins >= fast_wins:
        # No clean bracket (the fast backend won everywhere measured,
        # or the orderings interleave): the smallest fast-winning work
        # is the only defensible bound.
        return fast_wins
    return int(round(math.sqrt(cheap_wins * fast_wins)))


def report(
    name: str,
    current: int,
    cheap_wins: "int | None",
    fast_wins: "int | None",
) -> None:
    suggestion = suggest(cheap_wins, fast_wins)
    lo = f"{cheap_wins:,}" if cheap_wins is not None else "-"
    hi = f"{fast_wins:,}" if fast_wins is not None else "-"
    print(f"{name}:")
    print(f"  current constant : {current:>12,}")
    print(f"  crossover bracket: [{lo}, {hi}]")
    if suggestion is None:
        print("  suggestion       : (no measured rows for this pair)")
    else:
        print(f"  suggestion       : {suggestion:>12,}")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "record",
        nargs="?",
        default="BENCH_scale.json",
        help="bench_scale.py record to calibrate from",
    )
    args = parser.parse_args(argv)

    path = Path(args.record)
    if not path.exists():
        print(f"no such record: {path}", file=sys.stderr)
        return 1
    payload = json.loads(path.read_text())
    if payload.get("benchmark") != "scale":
        print(
            f"{path} is a {payload.get('benchmark')!r} record, "
            "expected bench_scale.py output",
            file=sys.stderr,
        )
        return 1
    rows = payload["rows"]
    availability = payload.get("context", {}).get(
        "backend_availability", {}
    )
    print(
        f"{path}: {len(rows)} measured instances "
        f"(numba {'available' if availability.get('numba') else 'absent'})"
    )
    print()

    report(
        "VECTOR_CROSSOVER_WORK (python -> vector)",
        VECTOR_CROSSOVER_WORK,
        *bracket_crossover(rows, "python", "vector"),
    )
    print()
    numba_bracket = bracket_crossover(rows, "python", "numba")
    report(
        "NUMBA_CROSSOVER_WORK (python -> numba)",
        NUMBA_CROSSOVER_WORK,
        *numba_bracket,
    )
    if numba_bracket == (None, None):
        print(
            "  note: no numba measurements in this record; feed the CI "
            "jit lane's BENCH_scale_jit.json artifact to calibrate it"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
